#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>

#include "core/detector.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "topo/torus.hpp"
#include "telemetry/interval.hpp"

namespace flexnet {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    cfg_.topology.k = 8;
    cfg_.topology.n = 2;
    cfg_.routing = RoutingKind::DOR;
    cfg_.message_length = 16;
    net_ = std::make_unique<Network>(cfg_, NetworkDeps{nullptr, make_routing(cfg_),
                                 make_selection(cfg_.selection)});
    // Three messages created at different cycles with different path
    // lengths, so every victim policy has a distinct answer.
    ids_.push_back(net_->enqueue_message(0, 7, 16));   // oldest, 7 hops
    net_->step();
    net_->step();
    ids_.push_back(net_->enqueue_message(8, 10, 16));  // middle, 2 hops
    net_->step();
    net_->step();
    ids_.push_back(net_->enqueue_message(16, 17, 16));  // newest, 1 hop
    for (int i = 0; i < 6; ++i) net_->step();
    for (const MessageId id : ids_) {
      EXPECT_EQ(net_->message(id).status, MessageStatus::InFlight);
    }
  }

  SimConfig cfg_;
  std::unique_ptr<Network> net_;
  std::vector<MessageId> ids_;
  Pcg32 rng_{5};
};

TEST_F(RecoveryTest, RemoveOldestPicksEarliestCreation) {
  EXPECT_EQ(choose_victim(*net_, ids_, RecoveryKind::RemoveOldest, rng_),
            ids_[0]);
}

TEST_F(RecoveryTest, RemoveNewestPicksLatestCreation) {
  EXPECT_EQ(choose_victim(*net_, ids_, RecoveryKind::RemoveNewest, rng_),
            ids_[2]);
}

TEST_F(RecoveryTest, RemoveMostResourcesPicksLongestChain) {
  // The 7-hop message has acquired the most VCs by now.
  const MessageId victim =
      choose_victim(*net_, ids_, RecoveryKind::RemoveMostResources, rng_);
  for (const MessageId other : ids_) {
    EXPECT_GE(net_->message(victim).held.size(),
              net_->message(other).held.size());
  }
}

TEST_F(RecoveryTest, RemoveRandomStaysInSetAndVaries) {
  std::set<MessageId> picked;
  for (int i = 0; i < 64; ++i) {
    const MessageId v =
        choose_victim(*net_, ids_, RecoveryKind::RemoveRandom, rng_);
    EXPECT_TRUE(std::find(ids_.begin(), ids_.end(), v) != ids_.end());
    picked.insert(v);
  }
  EXPECT_GT(picked.size(), 1u);
}

TEST_F(RecoveryTest, NoneThrows) {
  EXPECT_THROW((void)choose_victim(*net_, ids_, RecoveryKind::None, rng_),
               std::invalid_argument);
}

TEST_F(RecoveryTest, SingletonSetAlwaysPicksIt) {
  const std::vector<MessageId> one{ids_[1]};
  for (const RecoveryKind kind :
       {RecoveryKind::RemoveOldest, RecoveryKind::RemoveNewest,
        RecoveryKind::RemoveMostResources, RecoveryKind::RemoveRandom}) {
    EXPECT_EQ(choose_victim(*net_, one, kind, rng_), ids_[1]);
  }
}

TEST(MultiKnotRecovery, OnePassResolvesTwoDisjointKnots) {
  // Two disjoint ring deadlocks — rows 0 and 2 of a 4x4 unidirectional torus
  // each closed by four 2-hop messages — confirmed in a single detector
  // pass. Victim selection must resolve BOTH knots (one removal each), the
  // survivors must drain, and the telemetry interval series must account for
  // exactly two recoveries.
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 2;
  cfg.topology.bidirectional = false;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 8;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  const auto node = [&](int x, int y) {
    return torus_topology(net.topology()).coordinates().pack({x, y});
  };
  std::vector<MessageId> ring_a, ring_b;
  for (int i = 0; i < 4; ++i) {
    ring_a.push_back(net.enqueue_message(node(i, 0), node((i + 2) % 4, 0), 8));
    ring_b.push_back(net.enqueue_message(node(i, 2), node((i + 2) % 4, 2), 8));
  }
  for (int i = 0; i < 200; ++i) net.step();

  DetectorConfig det_cfg;
  det_cfg.recovery = RecoveryKind::RemoveOldest;
  DeadlockDetector detector(det_cfg, 1);
  IntervalRecorder series(/*interval=*/1, /*capacity=*/8);

  ASSERT_EQ(detector.run_detection(net), 2);
  series.sample(net, detector);

  // One victim per knot, each drawn from a different ring.
  ASSERT_EQ(detector.records().size(), 2u);
  const MessageId victim0 = detector.records()[0].victim;
  const MessageId victim1 = detector.records()[1].victim;
  ASSERT_NE(victim0, kInvalidMessage);
  ASSERT_NE(victim1, kInvalidMessage);
  const bool v0_in_a =
      std::find(ring_a.begin(), ring_a.end(), victim0) != ring_a.end();
  const bool v1_in_a =
      std::find(ring_a.begin(), ring_a.end(), victim1) != ring_a.end();
  EXPECT_NE(v0_in_a, v1_in_a);  // one victim from each disjoint knot

  // Telemetry: the interval covering the pass counts both recoveries and
  // both confirmed deadlocks.
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series.at(0).recovered, 2);
  EXPECT_EQ(series.at(0).deadlocks, 2);

  // With both knots broken the remaining six messages drain on their own —
  // no further detector intervention.
  for (int i = 0; i < 2000; ++i) net.step();
  EXPECT_TRUE(net.active_messages().empty());
  EXPECT_EQ(net.counters().delivered, 6);
  EXPECT_EQ(net.counters().recovered, 2);
  net.check_invariants();
}

TEST_F(RecoveryTest, RemovalUnblocksWaitingMessages) {
  // Force two messages to contend for the same channel: remove the holder
  // and the waiter proceeds.
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 1;
  cfg.topology.bidirectional = false;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 32;  // long: holds its channels for a while
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  const MessageId holder = net.enqueue_message(1, 3, 32);
  const MessageId waiter = net.enqueue_message(0, 2, 32);
  for (int i = 0; i < 10; ++i) net.step();
  // waiter's header should be blocked on channel 1->2 held by holder.
  ASSERT_TRUE(net.message(waiter).blocked);
  net.remove_message(holder);
  for (int i = 0; i < 200 && net.message(waiter).status != MessageStatus::Delivered;
       ++i) {
    net.step();
  }
  EXPECT_EQ(net.message(waiter).status, MessageStatus::Delivered);
  net.check_invariants();
}

}  // namespace
}  // namespace flexnet
