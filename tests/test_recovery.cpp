#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"

namespace flexnet {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    cfg_.topology.k = 8;
    cfg_.topology.n = 2;
    cfg_.routing = RoutingKind::DOR;
    cfg_.message_length = 16;
    net_ = std::make_unique<Network>(cfg_, make_routing(cfg_),
                                     make_selection(cfg_.selection));
    // Three messages created at different cycles with different path
    // lengths, so every victim policy has a distinct answer.
    ids_.push_back(net_->enqueue_message(0, 7, 16));   // oldest, 7 hops
    net_->step();
    net_->step();
    ids_.push_back(net_->enqueue_message(8, 10, 16));  // middle, 2 hops
    net_->step();
    net_->step();
    ids_.push_back(net_->enqueue_message(16, 17, 16));  // newest, 1 hop
    for (int i = 0; i < 6; ++i) net_->step();
    for (const MessageId id : ids_) {
      EXPECT_EQ(net_->message(id).status, MessageStatus::InFlight);
    }
  }

  SimConfig cfg_;
  std::unique_ptr<Network> net_;
  std::vector<MessageId> ids_;
  Pcg32 rng_{5};
};

TEST_F(RecoveryTest, RemoveOldestPicksEarliestCreation) {
  EXPECT_EQ(choose_victim(*net_, ids_, RecoveryKind::RemoveOldest, rng_),
            ids_[0]);
}

TEST_F(RecoveryTest, RemoveNewestPicksLatestCreation) {
  EXPECT_EQ(choose_victim(*net_, ids_, RecoveryKind::RemoveNewest, rng_),
            ids_[2]);
}

TEST_F(RecoveryTest, RemoveMostResourcesPicksLongestChain) {
  // The 7-hop message has acquired the most VCs by now.
  const MessageId victim =
      choose_victim(*net_, ids_, RecoveryKind::RemoveMostResources, rng_);
  for (const MessageId other : ids_) {
    EXPECT_GE(net_->message(victim).held.size(),
              net_->message(other).held.size());
  }
}

TEST_F(RecoveryTest, RemoveRandomStaysInSetAndVaries) {
  std::set<MessageId> picked;
  for (int i = 0; i < 64; ++i) {
    const MessageId v =
        choose_victim(*net_, ids_, RecoveryKind::RemoveRandom, rng_);
    EXPECT_TRUE(std::find(ids_.begin(), ids_.end(), v) != ids_.end());
    picked.insert(v);
  }
  EXPECT_GT(picked.size(), 1u);
}

TEST_F(RecoveryTest, NoneThrows) {
  EXPECT_THROW((void)choose_victim(*net_, ids_, RecoveryKind::None, rng_),
               std::invalid_argument);
}

TEST_F(RecoveryTest, SingletonSetAlwaysPicksIt) {
  const std::vector<MessageId> one{ids_[1]};
  for (const RecoveryKind kind :
       {RecoveryKind::RemoveOldest, RecoveryKind::RemoveNewest,
        RecoveryKind::RemoveMostResources, RecoveryKind::RemoveRandom}) {
    EXPECT_EQ(choose_victim(*net_, one, kind, rng_), ids_[1]);
  }
}

TEST_F(RecoveryTest, RemovalUnblocksWaitingMessages) {
  // Force two messages to contend for the same channel: remove the holder
  // and the waiter proceeds.
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 1;
  cfg.topology.bidirectional = false;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 32;  // long: holds its channels for a while
  Network net(cfg, make_routing(cfg), make_selection(cfg.selection));
  const MessageId holder = net.enqueue_message(1, 3, 32);
  const MessageId waiter = net.enqueue_message(0, 2, 32);
  for (int i = 0; i < 10; ++i) net.step();
  // waiter's header should be blocked on channel 1->2 held by holder.
  ASSERT_TRUE(net.message(waiter).blocked);
  net.remove_message(holder);
  for (int i = 0; i < 200 && net.message(waiter).status != MessageStatus::Delivered;
       ++i) {
    net.step();
  }
  EXPECT_EQ(net.message(waiter).status, MessageStatus::Delivered);
  net.check_invariants();
}

}  // namespace
}  // namespace flexnet
