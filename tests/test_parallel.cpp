#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

namespace flexnet {
namespace {

std::size_t fallback_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

class FlexnetThreadsEnv : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("FLEXNET_THREADS"); }

  void set(const char* value) { setenv("FLEXNET_THREADS", value, 1); }
};

TEST_F(FlexnetThreadsEnv, UnsetFallsBackToHardwareConcurrency) {
  unsetenv("FLEXNET_THREADS");
  EXPECT_EQ(worker_thread_count(), fallback_count());
}

TEST_F(FlexnetThreadsEnv, ValidValueIsUsed) {
  set("3");
  EXPECT_EQ(worker_thread_count(), 3u);
  set("1");
  EXPECT_EQ(worker_thread_count(), 1u);
}

TEST_F(FlexnetThreadsEnv, ZeroFallsBack) {
  set("0");
  EXPECT_EQ(worker_thread_count(), fallback_count());
}

TEST_F(FlexnetThreadsEnv, NegativeFallsBack) {
  set("-4");
  EXPECT_EQ(worker_thread_count(), fallback_count());
}

TEST_F(FlexnetThreadsEnv, GarbageFallsBack) {
  for (const char* bad : {"abc", "4x", "1.5", " 2", "2 ", "", "0x10",
                          "99999999999999999999999999"}) {
    set(bad);
    EXPECT_EQ(worker_thread_count(), fallback_count()) << "input: " << bad;
  }
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  setenv("FLEXNET_THREADS", "4", 1);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  unsetenv("FLEXNET_THREADS");
}

TEST(ParallelFor, PropagatesExceptions) {
  setenv("FLEXNET_THREADS", "2", 1);
  EXPECT_THROW(
      parallel_for(8,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  unsetenv("FLEXNET_THREADS");
}

}  // namespace
}  // namespace flexnet
