// Incremental-vs-oracle equivalence: the change-gated, blocked-subgraph
// detection pipeline (the default) must be bit-identical to the full-rebuild
// oracle (--detector-full-rebuild) in every observable way — per-pass
// verdicts, DeadlockRecord fields, capture-hook firings, RNG consumption, and
// serialized detector state. The suite checks live saturation runs for DOR
// and TFAR, replays of the committed deadlock corpus, and a checkpoint/resume
// mid-run proving the scratch/cache state is not serialized.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "exp/experiment.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "snapshot/snapshot.hpp"
#include "traffic/injection.hpp"
#include "util/binio.hpp"

#ifndef FLEXNET_CORPUS_DIR
#error "FLEXNET_CORPUS_DIR must point at the committed tests/corpus directory"
#endif

namespace flexnet {
namespace {

std::vector<std::uint8_t> detector_bytes(const DeadlockDetector& det) {
  BinWriter out;
  det.save_state(out);
  return out.bytes();
}

/// Records every on_knot firing with enough context to prove both pipelines
/// present identical knots, CWGs, and records to their hooks.
struct RecordingHook : KnotCaptureHook {
  struct Firing {
    Cycle at = -1;
    std::vector<VcId> knot_vcs;
    std::vector<MessageId> deadlock_set;
    std::vector<VcId> resource_set;
    std::vector<MessageId> dependents;
    MessageId victim = kInvalidMessage;
    std::int64_t density = -1;
    int cwg_ownership_arcs = 0;
    int cwg_request_arcs = 0;

    bool operator==(const Firing&) const = default;
  };
  std::vector<Firing> firings;

  void on_knot(const Network& net, const Cwg& cwg, const Knot& knot,
               const DeadlockRecord& record) override {
    firings.push_back({net.now(), knot.knot_vcs, knot.deadlock_set,
                       knot.resource_set, knot.dependent_messages,
                       record.victim, record.knot_cycle_density,
                       cwg.num_ownership_arcs(), cwg.num_request_arcs()});
  }
};

void expect_same_records(const DeadlockDetector& a, const DeadlockDetector& b) {
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    const DeadlockRecord& ra = a.records()[i];
    const DeadlockRecord& rb = b.records()[i];
    EXPECT_EQ(ra.detected_at, rb.detected_at);
    EXPECT_EQ(ra.deadlock_set_size, rb.deadlock_set_size);
    EXPECT_EQ(ra.resource_set_size, rb.resource_set_size);
    EXPECT_EQ(ra.knot_size, rb.knot_size);
    EXPECT_EQ(ra.dependent_count, rb.dependent_count);
    EXPECT_EQ(ra.knot_cycle_density, rb.knot_cycle_density);
    EXPECT_EQ(ra.density_capped, rb.density_capped);
    EXPECT_EQ(ra.victim, rb.victim);
  }
}

ExperimentConfig saturation_config(RoutingKind routing, RecoveryKind recovery) {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 8;
  cfg.sim.topology.n = 2;
  cfg.sim.vcs = 1;  // one VC per channel: wrap-around DOR/TFAR can deadlock
  cfg.sim.routing = routing;
  cfg.sim.message_length = 8;
  cfg.sim.seed = 11;
  cfg.traffic.load = 0.7;
  cfg.detector.interval = 1;  // the tightest cadence the paper's Section 3 needs
  cfg.detector.recovery = recovery;
  return cfg;
}

void run_equivalence(ExperimentConfig cfg, Cycle cycles) {
  ExperimentConfig oracle_cfg = cfg;
  oracle_cfg.detector.full_rebuild = true;
  Simulation inc(cfg);
  Simulation oracle(oracle_cfg);
  RecordingHook inc_hook;
  RecordingHook oracle_hook;
  inc.detector().set_capture(&inc_hook);
  oracle.detector().set_capture(&oracle_hook);

  for (Cycle i = 0; i < cycles; ++i) {
    inc.injection().tick(inc.network());
    inc.network().step();
    const int inc_verdict = inc.detector().tick(inc.network());
    oracle.injection().tick(oracle.network());
    oracle.network().step();
    const int oracle_verdict = oracle.detector().tick(oracle.network());
    ASSERT_EQ(inc_verdict, oracle_verdict) << "diverged at cycle " << i;
  }

  // The scenario must actually exercise detection and recovery.
  EXPECT_GT(inc.detector().total_deadlocks(), 0);
  EXPECT_FALSE(inc_hook.firings.empty());
  // ...and the gating must have engaged on the incremental side only.
  EXPECT_GT(inc.detector().skipped_passes(), 0);
  EXPECT_EQ(oracle.detector().skipped_passes(), 0);

  EXPECT_EQ(inc.detector().invocations(), oracle.detector().invocations());
  EXPECT_EQ(inc.detector().total_deadlocks(), oracle.detector().total_deadlocks());
  EXPECT_EQ(inc.detector().transient_knots(), oracle.detector().transient_knots());
  EXPECT_EQ(inc.detector().livelocks(), oracle.detector().livelocks());
  expect_same_records(inc.detector(), oracle.detector());
  EXPECT_EQ(inc_hook.firings, oracle_hook.firings);
  // Serialized state identical: the skip counter, verdict cache, and scratch
  // arenas are process-local and must never leak into the snapshot format.
  EXPECT_EQ(detector_bytes(inc.detector()), detector_bytes(oracle.detector()));
  // The networks evolved identically (same victims removed at same cycles).
  EXPECT_EQ(inc.network().counters().delivered,
            oracle.network().counters().delivered);
  EXPECT_EQ(inc.network().counters().recovered,
            oracle.network().counters().recovered);
}

TEST(DetectorEquivalence, LiveDorSaturationBitIdentical) {
  run_equivalence(saturation_config(RoutingKind::DOR, RecoveryKind::RemoveOldest),
                  5000);
}

TEST(DetectorEquivalence, LiveTfarSaturationBitIdentical) {
  // RemoveRandom draws from the detector RNG per confirmed knot, so this also
  // proves both pipelines consume the stream identically.
  run_equivalence(
      saturation_config(RoutingKind::TFAR, RecoveryKind::RemoveRandom), 5000);
}

TEST(DetectorEquivalence, QuiescenceRefreshPathMatchesOracle) {
  // recovery=None leaves every knot in place forever: the incremental side
  // re-reports from its cached verdict on every pass while the oracle
  // re-finds the same knots from scratch.
  run_equivalence(saturation_config(RoutingKind::DOR, RecoveryKind::None),
                  2000);
}

TEST(DetectorEquivalence, CommittedCorpusReplaysBitIdentical) {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(FLEXNET_CORPUS_DIR)) {
    if (entry.path().extension() == ".snap") files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());

  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    const Snapshot snap = read_snapshot_file(path);
    RestoredSim inc = restore_snapshot(snap);
    RestoredSim oracle = restore_snapshot(snap);

    // Fresh detectors (shared seed) so both sides start from identical
    // tallies and RNG positions; the restored network is the interesting
    // state — it contains the captured, still-unbroken knot.
    DetectorConfig inc_cfg = snap.detector;
    inc_cfg.interval = 1;
    inc_cfg.full_rebuild = false;
    DetectorConfig oracle_cfg = inc_cfg;
    oracle_cfg.full_rebuild = true;
    DeadlockDetector inc_det(inc_cfg, 99);
    DeadlockDetector oracle_det(oracle_cfg, 99);
    RecordingHook inc_hook;
    RecordingHook oracle_hook;
    inc_det.set_capture(&inc_hook);
    oracle_det.set_capture(&oracle_hook);

    for (int i = 0; i < 300; ++i) {
      inc.injection->tick(*inc.net);
      inc.net->step();
      const int inc_verdict = inc_det.tick(*inc.net);
      oracle.injection->tick(*oracle.net);
      oracle.net->step();
      const int oracle_verdict = oracle_det.tick(*oracle.net);
      ASSERT_EQ(inc_verdict, oracle_verdict) << "diverged at step " << i;
    }
    EXPECT_GT(inc_det.total_deadlocks(), 0) << "capture should re-deadlock";
    expect_same_records(inc_det, oracle_det);
    EXPECT_EQ(inc_hook.firings, oracle_hook.firings);
    EXPECT_EQ(detector_bytes(inc_det), detector_bytes(oracle_det));
  }
}

TEST(DetectorEquivalence, CheckpointResumeDoesNotSerializeScratch) {
  const ExperimentConfig cfg =
      saturation_config(RoutingKind::DOR, RecoveryKind::RemoveOldest);
  Simulation original(cfg);
  for (Cycle i = 0; i < 1500; ++i) {
    original.injection().tick(original.network());
    original.network().step();
    original.detector().tick(original.network());
  }
  ASSERT_GT(original.detector().skipped_passes(), 0);

  // Mid-run checkpoint while the incremental cache is warm. Round-tripping
  // the detector must be byte-stable even though the live detector carries
  // cache/scratch state the restored one cannot have.
  const Snapshot snap = original.make_checkpoint();
  RestoredSim resumed = restore_snapshot(snap);
  EXPECT_EQ(detector_bytes(*resumed.detector),
            detector_bytes(original.detector()));
  // A resumed detector starts with zero skipped passes: the counter is
  // process-local cost accounting, not simulation state.
  EXPECT_EQ(resumed.detector->skipped_passes(), 0);

  // Continuing both must stay flit- and verdict-identical: the restored
  // detector rebuilds its scratch on the first pass and re-converges.
  for (Cycle i = 0; i < 800; ++i) {
    original.injection().tick(original.network());
    original.network().step();
    const int original_verdict = original.detector().tick(original.network());
    resumed.injection->tick(*resumed.net);
    resumed.net->step();
    const int resumed_verdict = resumed.detector->tick(*resumed.net);
    ASSERT_EQ(original_verdict, resumed_verdict) << "diverged at cycle " << i;
  }
  expect_same_records(original.detector(), *resumed.detector);
  EXPECT_EQ(detector_bytes(original.detector()),
            detector_bytes(*resumed.detector));
}

TEST(DetectorEquivalence, ArcEpochIsStableInASettledDeadlock) {
  // 4-node unidirectional ring, every node sending two hops ahead: a
  // permanent deadlock. Once settled, nothing moves, so the arc epoch must
  // stand still — the precondition for the detector's pure-refresh path.
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 1;
  cfg.topology.bidirectional = false;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 8;
  cfg.buffer_depth = 2;
  auto net = std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  for (NodeId n = 0; n < 4; ++n) net->enqueue_message(n, (n + 2) % 4, 8);
  for (int i = 0; i < 100; ++i) net->step();

  const std::uint64_t settled = net->arc_epoch();
  EXPECT_GT(settled, 0u);
  for (int i = 0; i < 20; ++i) net->step();
  EXPECT_EQ(net->arc_epoch(), settled);

  DetectorConfig det_cfg;
  det_cfg.interval = 1;
  det_cfg.recovery = RecoveryKind::None;
  DeadlockDetector det(det_cfg, 1);
  for (int i = 0; i < 50; ++i) {
    net->step();
    det.tick(*net);
  }
  EXPECT_EQ(det.invocations(), 50);
  EXPECT_EQ(det.skipped_passes(), 49);  // only the first pass rebuilds
  EXPECT_EQ(det.total_deadlocks(), 50);  // re-reported every pass, as before
}

TEST(DetectorEquivalence, IdleNetworkSkipsEveryPass) {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 2;
  auto net = std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  DeadlockDetector det(DetectorConfig{.interval = 1}, 1);
  for (int i = 0; i < 25; ++i) {
    net->step();
    EXPECT_EQ(det.tick(*net), 0);
  }
  // Nothing is ever blocked, so the zero-blocked fast path answers each pass.
  EXPECT_EQ(det.invocations(), 25);
  EXPECT_EQ(det.skipped_passes(), 25);
}

}  // namespace
}  // namespace flexnet
