#include "core/cycles.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace flexnet {
namespace {

TEST(Cycles, AcyclicGraphHasNone) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  const CycleEnumeration r = enumerate_simple_cycles(g, 1000);
  EXPECT_EQ(r.count, 0);
  EXPECT_FALSE(r.capped);
}

TEST(Cycles, SingleCycle) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const CycleEnumeration r = enumerate_simple_cycles(g, 1000, 10);
  EXPECT_EQ(r.count, 1);
  ASSERT_EQ(r.cycles.size(), 1u);
  EXPECT_EQ(r.cycles[0].size(), 4u);
}

TEST(Cycles, CompleteDigraphK3HasFive) {
  // K3 with all directed edges: three 2-cycles and two 3-cycles.
  Digraph g(3);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a != b) g.add_edge(a, b);
    }
  }
  const CycleEnumeration r = enumerate_simple_cycles(g, 1000);
  EXPECT_EQ(r.count, 5);
}

TEST(Cycles, CompleteDigraphK4HasTwenty) {
  // 6 two-cycles + 8 three-cycles + 6 four-cycles = 20.
  Digraph g(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) g.add_edge(a, b);
    }
  }
  const CycleEnumeration r = enumerate_simple_cycles(g, 1000);
  EXPECT_EQ(r.count, 20);
}

TEST(Cycles, SelfLoopsAreLengthOneCycles) {
  Digraph g(3);
  g.add_edge(0, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  const CycleEnumeration r = enumerate_simple_cycles(g, 1000, 10);
  EXPECT_EQ(r.count, 2);
  // One stored cycle is the self-loop {0}.
  const bool has_self = std::any_of(
      r.cycles.begin(), r.cycles.end(),
      [](const std::vector<int>& c) { return c == std::vector<int>{0}; });
  EXPECT_TRUE(has_self);
}

TEST(Cycles, DisjointCyclesCounted) {
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  const CycleEnumeration r = enumerate_simple_cycles(g, 1000);
  EXPECT_EQ(r.count, 2);
}

TEST(Cycles, ChordAddsExactlyOneCycle) {
  Digraph g(5);
  for (int i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
  g.add_edge(0, 2);  // shortcut: ring cycle + chord cycle
  const CycleEnumeration r = enumerate_simple_cycles(g, 1000);
  EXPECT_EQ(r.count, 2);
}

TEST(Cycles, CapStopsEnumeration) {
  Digraph g(6);
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      if (a != b) g.add_edge(a, b);
    }
  }
  const CycleEnumeration r = enumerate_simple_cycles(g, 10);
  EXPECT_TRUE(r.capped);
  EXPECT_GE(r.count, 10);
  EXPECT_LE(r.count, 11);  // stops promptly after reaching the cap
}

TEST(Cycles, ZeroCapReportsCapped) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const CycleEnumeration r = enumerate_simple_cycles(g, 0);
  EXPECT_TRUE(r.capped);
  EXPECT_EQ(r.count, 0);
}

TEST(Cycles, StoreLimitBoundsMaterialization) {
  Digraph g(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) g.add_edge(a, b);
    }
  }
  const CycleEnumeration r = enumerate_simple_cycles(g, 1000, 3);
  EXPECT_EQ(r.count, 20);
  EXPECT_EQ(r.cycles.size(), 3u);
}

TEST(Cycles, StoredCyclesAreValidElementaryCycles) {
  Digraph g(5);
  for (int i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
  g.add_edge(1, 3);
  g.add_edge(3, 1);
  const CycleEnumeration r = enumerate_simple_cycles(g, 1000, 100);
  ASSERT_EQ(static_cast<std::size_t>(r.count), r.cycles.size());
  for (const auto& cycle : r.cycles) {
    // Vertices distinct and consecutive edges present (wrapping).
    std::vector<int> sorted = cycle;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      EXPECT_TRUE(g.has_edge(cycle[i], cycle[(i + 1) % cycle.size()]));
    }
  }
}

TEST(Cycles, FigureEightSharedVertex) {
  // Two triangles sharing vertex 0: exactly two cycles.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 0);
  const CycleEnumeration r = enumerate_simple_cycles(g, 1000);
  EXPECT_EQ(r.count, 2);
}

}  // namespace
}  // namespace flexnet
