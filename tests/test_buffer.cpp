#include "sim/buffer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flexnet {
namespace {

Flit flit(MessageId m, std::int32_t seq) {
  Flit f;
  f.message = m;
  f.seq = seq;
  return f;
}

TEST(FlitFifo, StartsEmpty) {
  FlitFifo fifo(4);
  EXPECT_TRUE(fifo.empty());
  EXPECT_FALSE(fifo.full());
  EXPECT_EQ(fifo.size(), 0);
  EXPECT_EQ(fifo.capacity(), 4);
}

TEST(FlitFifo, FifoOrder) {
  FlitFifo fifo(3);
  fifo.push(flit(7, 0));
  fifo.push(flit(7, 1));
  fifo.push(flit(7, 2));
  EXPECT_TRUE(fifo.full());
  EXPECT_EQ(fifo.pop().seq, 0);
  EXPECT_EQ(fifo.pop().seq, 1);
  EXPECT_EQ(fifo.pop().seq, 2);
  EXPECT_TRUE(fifo.empty());
}

TEST(FlitFifo, RingWrapsCorrectly) {
  FlitFifo fifo(2);
  for (std::int32_t i = 0; i < 10; ++i) {
    fifo.push(flit(1, i));
    EXPECT_EQ(fifo.front().seq, i);
    EXPECT_EQ(fifo.pop().seq, i);
  }
  EXPECT_TRUE(fifo.empty());
}

TEST(FlitFifo, InterleavedPushPopKeepsOrder) {
  FlitFifo fifo(4);
  fifo.push(flit(1, 0));
  fifo.push(flit(1, 1));
  EXPECT_EQ(fifo.pop().seq, 0);
  fifo.push(flit(1, 2));
  fifo.push(flit(1, 3));
  fifo.push(flit(1, 4));
  EXPECT_TRUE(fifo.full());
  EXPECT_EQ(fifo.pop().seq, 1);
  EXPECT_EQ(fifo.pop().seq, 2);
  EXPECT_EQ(fifo.pop().seq, 3);
  EXPECT_EQ(fifo.pop().seq, 4);
}

TEST(FlitFifo, RandomAccessAt) {
  FlitFifo fifo(3);
  fifo.push(flit(1, 5));
  fifo.push(flit(1, 6));
  EXPECT_EQ(fifo.at(0).seq, 5);
  EXPECT_EQ(fifo.at(1).seq, 6);
}

TEST(FlitFifo, ClearEmpties) {
  FlitFifo fifo(3);
  fifo.push(flit(1, 0));
  fifo.push(flit(1, 1));
  fifo.clear();
  EXPECT_TRUE(fifo.empty());
  fifo.push(flit(2, 0));
  EXPECT_EQ(fifo.front().message, 2);
}

TEST(FlitFifo, RejectsNonPositiveCapacity) {
  EXPECT_THROW(FlitFifo(0), std::invalid_argument);
  EXPECT_THROW(FlitFifo(-1), std::invalid_argument);
}

TEST(Flit, HeadTailClassification) {
  EXPECT_TRUE(flit(1, 0).is_head());
  EXPECT_FALSE(flit(1, 1).is_head());
  EXPECT_TRUE(flit(1, 31).is_tail_of(32));
  EXPECT_FALSE(flit(1, 30).is_tail_of(32));
  // A single-flit message is both head and tail.
  EXPECT_TRUE(flit(1, 0).is_head());
  EXPECT_TRUE(flit(1, 0).is_tail_of(1));
}

}  // namespace
}  // namespace flexnet
