// Randomized ActiveSet stress against a std::set oracle, including the
// live-scan semantics the event-driven and sharded cores lean on: erasing
// the current id mid-scan, erasing ids ahead of the cursor, and inserting
// ahead of the cursor (which must be visited in the same sweep).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "sim/active.hpp"
#include "util/rng.hpp"

namespace flexnet {
namespace {

std::vector<std::int32_t> drain(const ActiveSet& set) {
  std::vector<std::int32_t> out;
  for (std::int32_t id = set.first(); id != -1; id = set.next_after(id)) {
    out.push_back(id);
  }
  return out;
}

TEST(ActiveStress, RandomInsertEraseMatchesSetOracle) {
  constexpr std::size_t kCapacity = 5000;  // spans many level-0/level-1 words
  ActiveSet set(kCapacity);
  std::set<std::int32_t> oracle;
  Pcg32 rng(0xac71f357, 1);

  for (int op = 0; op < 200000; ++op) {
    const auto id = static_cast<std::int32_t>(rng.bounded(kCapacity));
    switch (rng.bounded(4)) {
      case 0:
      case 1:  // bias toward inserts so the set stays populated
        set.insert(id);
        oracle.insert(id);
        break;
      case 2:
        set.erase(id);
        oracle.erase(id);
        break;
      default:
        ASSERT_EQ(set.contains(id), oracle.count(id) != 0) << "id " << id;
        break;
    }
    ASSERT_EQ(set.count(), oracle.size());
    if (op % 5000 == 0) {
      ASSERT_EQ(drain(set),
                std::vector<std::int32_t>(oracle.begin(), oracle.end()));
    }
  }
  EXPECT_EQ(drain(set), std::vector<std::int32_t>(oracle.begin(), oracle.end()));
}

TEST(ActiveStress, DoubleInsertAndDoubleEraseAreIdempotent) {
  ActiveSet set(128);
  set.insert(7);
  set.insert(7);
  EXPECT_EQ(set.count(), 1u);
  set.erase(7);
  set.erase(7);
  EXPECT_EQ(set.count(), 0u);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.first(), -1);
}

TEST(ActiveStress, EraseCurrentDuringScan) {
  // Self-erasing visits — exactly what deliver/transmit descheduling does —
  // must not derail the sweep.
  constexpr std::size_t kCapacity = 1 << 14;
  ActiveSet set(kCapacity);
  std::set<std::int32_t> oracle;
  Pcg32 rng(0xe8a5e, 2);
  for (int i = 0; i < 3000; ++i) {
    const auto id = static_cast<std::int32_t>(rng.bounded(kCapacity));
    set.insert(id);
    oracle.insert(id);
  }

  std::vector<std::int32_t> visited;
  for (std::int32_t id = set.first(); id != -1; id = set.next_after(id)) {
    visited.push_back(id);
    if (rng.bounded(2) == 0) set.erase(id);  // erase the current id mid-scan
  }
  EXPECT_EQ(visited, std::vector<std::int32_t>(oracle.begin(), oracle.end()));

  // Survivors are exactly the non-erased ids, still in ascending order.
  std::set<std::int32_t> survivors(oracle.begin(), oracle.end());
  for (const std::int32_t id : visited) {
    if (!set.contains(id)) survivors.erase(id);
  }
  EXPECT_EQ(drain(set),
            std::vector<std::int32_t>(survivors.begin(), survivors.end()));
}

TEST(ActiveStress, InsertAheadIsVisitedSameSweepInsertBehindIsNot) {
  // The dense-equivalence contract: ids inserted ahead of the cursor join
  // the current sweep; ids inserted behind wait for the next one.
  ActiveSet set(4096);
  for (const std::int32_t id : {100, 2000}) set.insert(id);

  std::vector<std::int32_t> visited;
  for (std::int32_t id = set.first(); id != -1; id = set.next_after(id)) {
    visited.push_back(id);
    if (id == 100) {
      set.insert(1500);  // ahead: must appear later this sweep
      set.insert(5);     // behind: must NOT appear this sweep
    }
  }
  EXPECT_EQ(visited, (std::vector<std::int32_t>{100, 1500, 2000}));
  // The behind-cursor insert is still scheduled for the next sweep.
  EXPECT_EQ(drain(set), (std::vector<std::int32_t>{5, 100, 1500, 2000}));
}

TEST(ActiveStress, RandomizedMutationDuringScan) {
  // Free-for-all: every visit may erase ids (current, ahead, behind) and
  // insert ahead. Oracle mirrors the live-scan contract: a visited sequence
  // is valid iff each visited id was in the set when the cursor passed it.
  constexpr std::size_t kCapacity = 2048;
  Pcg32 rng(0x5ca9, 3);
  for (int round = 0; round < 200; ++round) {
    ActiveSet set(kCapacity);
    std::set<std::int32_t> expect;  // ids the sweep still owes us
    for (int i = 0; i < 200; ++i) {
      const auto id = static_cast<std::int32_t>(rng.bounded(kCapacity));
      set.insert(id);
      expect.insert(id);
    }

    for (std::int32_t id = set.first(); id != -1; id = set.next_after(id)) {
      ASSERT_EQ(*expect.begin(), id) << "round " << round;
      expect.erase(expect.begin());
      const auto target = static_cast<std::int32_t>(rng.bounded(kCapacity));
      switch (rng.bounded(4)) {
        case 0:
          set.erase(id);  // erase current: already visited, nothing owed
          break;
        case 1:
          set.erase(target);
          if (target > id) expect.erase(target);  // ahead: no longer owed
          break;
        case 2:
          set.insert(target);
          if (target > id) expect.insert(target);  // ahead: owed this sweep
          break;
        default:
          break;
      }
    }
    ASSERT_TRUE(expect.empty()) << "round " << round;
  }
}

TEST(ActiveStress, CapacityBoundaryIds) {
  // First/last id of level-0 words and of the whole set: bit arithmetic at
  // the seams (63/64, 4095/4096 = level-1 word boundary).
  constexpr std::size_t kCapacity = 4096 + 130;
  ActiveSet set(kCapacity);
  const std::vector<std::int32_t> ids = {0,    1,    63,   64,   127,  128,
                                         4095, 4096, 4097, 4225};
  for (const std::int32_t id : ids) set.insert(id);
  EXPECT_EQ(drain(set), ids);
  for (const std::int32_t id : ids) set.erase(id);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.first(), -1);
}

}  // namespace
}  // namespace flexnet
