#include "routing/dor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "topo/torus.hpp"

namespace flexnet {
namespace {

class DorTest : public ::testing::Test {
 protected:
  DorTest() {
    cfg_.topology.k = 8;
    cfg_.topology.n = 2;
    cfg_.routing = RoutingKind::DOR;
    net_ = std::make_unique<Network>(cfg_, NetworkDeps{nullptr, make_routing(cfg_),
                                 make_selection(cfg_.selection)});
  }

  Message msg_to(NodeId src, NodeId dst) const {
    Message m;
    m.id = 0;
    m.src = src;
    m.dst = dst;
    m.length = 8;
    return m;
  }

  VcId injection_vc(NodeId node) const {
    return net_->phys(net_->injection_channel(node)).first_vc;
  }

  SimConfig cfg_;
  std::unique_ptr<Network> net_;
  DorRouting dor_;
};

TEST_F(DorTest, ResolvesLowestDimensionFirst) {
  const NodeId src = torus_topology(net_->topology()).coordinates().pack({0, 0});
  const NodeId dst = torus_topology(net_->topology()).coordinates().pack({2, 3});
  std::vector<ChannelId> out;
  dor_.candidate_channels(*net_, msg_to(src, dst), src, injection_vc(src), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(net_->phys(out[0]).dim, 0);
  EXPECT_EQ(net_->phys(out[0]).dir, +1);
}

TEST_F(DorTest, SwitchesDimensionOnceAligned) {
  const NodeId here = torus_topology(net_->topology()).coordinates().pack({2, 0});
  const NodeId dst = torus_topology(net_->topology()).coordinates().pack({2, 3});
  std::vector<ChannelId> out;
  dor_.candidate_channels(*net_, msg_to(0, dst), here, injection_vc(here), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(net_->phys(out[0]).dim, 1);
}

TEST_F(DorTest, TakesShorterDirection) {
  const NodeId src = torus_topology(net_->topology()).coordinates().pack({0, 0});
  const NodeId dst = torus_topology(net_->topology()).coordinates().pack({6, 0});  // -2 shorter
  std::vector<ChannelId> out;
  dor_.candidate_channels(*net_, msg_to(src, dst), src, injection_vc(src), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(net_->phys(out[0]).dir, -1);
}

TEST_F(DorTest, TieBreaksPositive) {
  const NodeId src = torus_topology(net_->topology()).coordinates().pack({0, 0});
  const NodeId dst = torus_topology(net_->topology()).coordinates().pack({4, 0});  // exactly k/2
  std::vector<ChannelId> out;
  dor_.candidate_channels(*net_, msg_to(src, dst), src, injection_vc(src), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(net_->phys(out[0]).dir, +1);
}

TEST_F(DorTest, DorChannelReturnsInvalidAtDestination) {
  EXPECT_EQ(DorRouting::dor_channel(*net_, 5, 5), kInvalidChannel);
}

TEST_F(DorTest, UnrestrictedVcUse) {
  // The paper's DOR places no restriction on which VC may be used.
  const Message m = msg_to(0, 5);
  EXPECT_TRUE(dor_.vc_allowed(*net_, m, 0, 0, injection_vc(0)));
  EXPECT_TRUE(dor_.vc_allowed(*net_, m, 0, 3, injection_vc(0)));
  EXPECT_FALSE(dor_.deadlock_free());
  EXPECT_FALSE(dor_.prefer_high_vc_indices());
}

TEST_F(DorTest, DeliveredPathsFollowDimensionOrder) {
  // End-to-end: run messages and confirm each path's acquired network
  // channels never go back to a lower dimension.
  const NodeId dst = torus_topology(net_->topology()).coordinates().pack({3, 5});
  net_->enqueue_message(0, dst, 8);
  const MessageId id = 0;
  std::vector<int> dims;
  VcId last_tip = kInvalidVc;
  while (net_->message(id).status != MessageStatus::Delivered) {
    ASSERT_LT(net_->now(), 300);
    net_->step();
    const Message& msg = net_->message(id);
    if (msg.held.empty() || msg.held.back() == last_tip) continue;
    last_tip = msg.held.back();  // newest acquisition this cycle
    const PhysChannel& pc = net_->phys(net_->vc(last_tip).channel);
    if (pc.kind == ChannelKind::Network) dims.push_back(pc.dim);
  }
  // The recorded dimension sequence must be non-decreasing.
  for (std::size_t i = 1; i < dims.size(); ++i) {
    EXPECT_LE(dims[i - 1], dims[i]);
  }
}

TEST_F(DorTest, UnidirectionalTorusAlwaysRoutesPositive) {
  SimConfig cfg = cfg_;
  cfg.topology.bidirectional = false;
  Network uni(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  const NodeId src = torus_topology(uni.topology()).coordinates().pack({5, 0});
  const NodeId dst = torus_topology(uni.topology()).coordinates().pack({2, 0});
  std::vector<ChannelId> out;
  DorRouting dor;
  Message m;
  m.src = src;
  m.dst = dst;
  dor.candidate_channels(uni, m, src,
                         uni.phys(uni.injection_channel(src)).first_vc, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(uni.phys(out[0]).dir, +1);
}

}  // namespace
}  // namespace flexnet
