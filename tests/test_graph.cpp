#include "core/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace flexnet {
namespace {

TEST(Digraph, EmptyGraph) {
  const Digraph g(0);
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Digraph, AddAndQueryEdges) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(3, 1));
  EXPECT_EQ(g.out(1).size(), 2u);
  EXPECT_EQ(g.out(3).size(), 0u);
}

TEST(Digraph, SelfLoopsAllowed) {
  Digraph g(2);
  g.add_edge(0, 0);
  EXPECT_TRUE(g.has_edge(0, 0));
}

TEST(Digraph, BoundsChecked) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
}

TEST(Digraph, InducedSubgraphRemapsVertices) {
  Digraph g(5);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(4, 0);
  g.add_edge(1, 2);  // 1 excluded below
  g.add_edge(2, 3);  // 3 excluded below

  const std::vector<int> keep{0, 2, 4};
  const Digraph sub = g.induced(keep);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 3);
  // keep[0]=0, keep[1]=2, keep[2]=4.
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_TRUE(sub.has_edge(2, 0));
  EXPECT_FALSE(sub.has_edge(1, 0));
}

TEST(Digraph, InducedEmptySelection) {
  Digraph g(3);
  g.add_edge(0, 1);
  const Digraph sub = g.induced(std::vector<int>{});
  EXPECT_EQ(sub.num_vertices(), 0);
  EXPECT_EQ(sub.num_edges(), 0);
}

}  // namespace
}  // namespace flexnet
