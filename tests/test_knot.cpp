#include "core/knot.hpp"

#include <gtest/gtest.h>

namespace flexnet {
namespace {

TEST(Knot, EmptyGraphHasNoDeadlock) {
  const Cwg cwg(8, {});
  EXPECT_TRUE(find_knots(cwg).empty());
  EXPECT_FALSE(has_deadlock(cwg));
}

TEST(Knot, BlockedOnFreeChannelIsNoDeadlock) {
  // A single blocked message requesting a free VC: the request arc leaves
  // to a sink vertex, so no terminal SCC with an edge exists.
  const Cwg cwg(4, {{.id = 1, .held = {0, 1}, .requests = {2}}});
  EXPECT_FALSE(has_deadlock(cwg));
}

TEST(Knot, BlockedOnMovingMessageIsNoDeadlock) {
  // m1 waits on a VC held by m2, but m2 is not blocked (its chain tip has no
  // request arcs): m2 will drain and release.
  const Cwg cwg(6, {{.id = 1, .held = {0, 1}, .requests = {2}},
                    {.id = 2, .held = {2, 3}, .requests = {}}});
  EXPECT_FALSE(has_deadlock(cwg));
}

TEST(Knot, TwoMessageMutualWaitIsDeadlock) {
  // The minimal deadlock: m1 waits on m2's VC and vice versa.
  const Cwg cwg(4, {{.id = 1, .held = {0}, .requests = {1}},
                    {.id = 2, .held = {1}, .requests = {0}}});
  const auto knots = find_knots(cwg);
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knots[0].knot_vcs, (std::vector<VcId>{0, 1}));
  EXPECT_EQ(knots[0].deadlock_set, (std::vector<MessageId>{1, 2}));
  EXPECT_EQ(knots[0].resource_set, (std::vector<VcId>{0, 1}));
  EXPECT_TRUE(knots[0].dependent_messages.empty());
}

TEST(Knot, EscapeRouteBreaksTheKnot) {
  // Same mutual wait, but m1 also requests a free VC 3: cycles remain yet no
  // knot exists (Duato's escape-channel principle; paper Fig. 4 discussion).
  const Cwg cwg(4, {{.id = 1, .held = {0}, .requests = {1, 3}},
                    {.id = 2, .held = {1}, .requests = {0}}});
  EXPECT_FALSE(has_deadlock(cwg));
  // The cycle is still there:
  const CycleEnumeration cycles = enumerate_simple_cycles(cwg.graph(), 100);
  EXPECT_GE(cycles.count, 1);
}

TEST(Knot, EscapeToMovingMessageAlsoBreaksTheKnot) {
  // The escape VC is owned but by a draining (non-blocked) message.
  const Cwg cwg(6, {{.id = 1, .held = {0}, .requests = {1, 3}},
                    {.id = 2, .held = {1}, .requests = {0}},
                    {.id = 3, .held = {3, 4}, .requests = {}}});
  EXPECT_FALSE(has_deadlock(cwg));
}

TEST(Knot, ResourceSetIsSupersetOfKnot) {
  // Deadlock-set messages hold VCs outside the knot; the resource set must
  // include them (paper Fig. 2: knot {1,3,5,7} but 8 occupied channels).
  const Cwg cwg(8, {{.id = 1, .held = {0, 1}, .requests = {3}},
                    {.id = 2, .held = {2, 3}, .requests = {5}},
                    {.id = 3, .held = {4, 5}, .requests = {7}},
                    {.id = 4, .held = {6, 7}, .requests = {1}}});
  const auto knots = find_knots(cwg);
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knots[0].knot_vcs, (std::vector<VcId>{1, 3, 5, 7}));
  EXPECT_EQ(knots[0].resource_set, (std::vector<VcId>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(knots[0].deadlock_set.size(), 4u);
}

TEST(Knot, DependentMessagesAreNotInTheDeadlockSet) {
  // m5 waits on a deadlocked VC but owns nothing the knot needs: removing it
  // would not resolve the deadlock (paper Section 2.2.1's m6).
  const Cwg cwg(12, {{.id = 1, .held = {0, 1}, .requests = {3}},
                     {.id = 2, .held = {2, 3}, .requests = {1}},
                     {.id = 5, .held = {8, 9}, .requests = {1}}});
  const auto knots = find_knots(cwg);
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knots[0].deadlock_set, (std::vector<MessageId>{1, 2}));
  EXPECT_EQ(knots[0].dependent_messages, (std::vector<MessageId>{5}));
}

TEST(Knot, MultipleDisjointKnots) {
  const Cwg cwg(8, {{.id = 1, .held = {0}, .requests = {1}},
                    {.id = 2, .held = {1}, .requests = {0}},
                    {.id = 3, .held = {4}, .requests = {5}},
                    {.id = 4, .held = {5}, .requests = {4}}});
  const auto knots = find_knots(cwg);
  ASSERT_EQ(knots.size(), 2u);
  EXPECT_NE(knots[0].knot_vcs, knots[1].knot_vcs);
}

TEST(Knot, SelfRequestFormsASelfLoopKnot) {
  // Pathological (only reachable with misrouting): a message waiting on its
  // own VC is deadlocked with itself.
  const Cwg cwg(4, {{.id = 1, .held = {0}, .requests = {0}}});
  const auto knots = find_knots(cwg);
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knots[0].knot_vcs, (std::vector<VcId>{0}));
  EXPECT_EQ(knots[0].deadlock_set, (std::vector<MessageId>{1}));
}

TEST(Knot, CycleDensityCountsKnotSubgraphOnly) {
  // Mutual wait with an extra cycle outside the knot-adjacent chains.
  const Cwg cwg(8, {{.id = 1, .held = {0}, .requests = {1}},
                    {.id = 2, .held = {1}, .requests = {0}}});
  const auto knots = find_knots(cwg);
  ASSERT_EQ(knots.size(), 1u);
  const CycleEnumeration density = knot_cycle_density(cwg, knots[0], 100, 10);
  EXPECT_EQ(density.count, 1);
  ASSERT_EQ(density.cycles.size(), 1u);
  // Stored cycles are mapped back to original VC ids.
  std::vector<int> cycle = density.cycles[0];
  std::sort(cycle.begin(), cycle.end());
  EXPECT_EQ(cycle, (std::vector<int>{0, 1}));
}

TEST(Knot, ChainedWaitsIntoAKnotLeaveDependentsOut) {
  // m3 -> m1/m2 knot through a chain of two dependent messages; only the
  // direct waiter is classified dependent (documented direct definition).
  const Cwg cwg(12, {{.id = 1, .held = {0}, .requests = {1}},
                     {.id = 2, .held = {1}, .requests = {0}},
                     {.id = 3, .held = {4}, .requests = {0}},
                     {.id = 4, .held = {6}, .requests = {4}}});
  const auto knots = find_knots(cwg);
  ASSERT_EQ(knots.size(), 1u);
  EXPECT_EQ(knots[0].dependent_messages, (std::vector<MessageId>{3}));
}

}  // namespace
}  // namespace flexnet
