#include "topo/torus.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <tuple>

namespace flexnet {
namespace {

TopologyConfig make(int k, int n, bool bidir, bool wrap) {
  TopologyConfig cfg;
  cfg.k = k;
  cfg.n = n;
  cfg.bidirectional = bidir;
  cfg.wrap = wrap;
  return cfg;
}

TEST(Torus, ChannelCounts) {
  const KAryNCube bi(make(16, 2, true, true));
  EXPECT_EQ(bi.num_nodes(), 256);
  EXPECT_EQ(bi.channels().size(), 256u * 2 * 2);  // 2 dims x 2 dirs

  const KAryNCube uni(make(16, 2, false, true));
  EXPECT_EQ(uni.channels().size(), 256u * 2);  // 2 dims x 1 dir

  const KAryNCube mesh(make(4, 2, true, false));
  // 2 dims x 2 dirs x 16 nodes minus the boundary links: per dim, each of
  // the 4 rows loses 2 of its 8 directed links -> 24 per dim.
  EXPECT_EQ(mesh.channels().size(), 48u);
}

TEST(Torus, ChannelEndpointsAreConsistent) {
  const KAryNCube topo(make(8, 3, true, true));
  for (const ChannelDesc& ch : topo.channels()) {
    EXPECT_EQ(topo.coordinates().neighbor(ch.src, ch.dim, ch.dir), ch.dst);
    EXPECT_EQ(topo.out_channel(ch.src, ch.dim, ch.dir), ch.id);
  }
}

TEST(Torus, WrapLinksAreMarked) {
  const KAryNCube topo(make(4, 1, true, true));
  int wraps = 0;
  for (const ChannelDesc& ch : topo.channels()) {
    if (ch.is_wrap) ++wraps;
  }
  EXPECT_EQ(wraps, 2);  // 3->0 (+1) and 0->3 (-1)
}

TEST(Torus, MeshHasNoBoundaryChannels) {
  const KAryNCube mesh(make(4, 2, true, false));
  EXPECT_EQ(mesh.out_channel(3, 0, +1), kInvalidChannel);  // x = 3 edge
  EXPECT_EQ(mesh.out_channel(0, 0, -1), kInvalidChannel);  // x = 0 edge
  EXPECT_NE(mesh.out_channel(1, 0, +1), kInvalidChannel);
  for (const ChannelDesc& ch : mesh.channels()) {
    EXPECT_FALSE(ch.is_wrap);
  }
}

TEST(Torus, UnidirectionalMeshRejected) {
  EXPECT_THROW(KAryNCube(make(4, 2, false, false)), std::invalid_argument);
}

TEST(Torus, DimDistanceBidirectionalTakesShortWay) {
  const KAryNCube topo(make(16, 2, true, true));
  EXPECT_EQ(topo.dim_distance(0, 3, 0), 3);
  EXPECT_EQ(topo.dim_distance(0, 13, 0), 3);  // wraps: 16 - 13
  EXPECT_EQ(topo.dim_distance(0, 8, 0), 8);   // exactly half way
}

TEST(Torus, DimDistanceUnidirectionalAlwaysForward) {
  const KAryNCube topo(make(16, 2, false, true));
  EXPECT_EQ(topo.dim_distance(0, 3, 0), 3);
  EXPECT_EQ(topo.dim_distance(0, 13, 0), 13);
  EXPECT_EQ(topo.dim_distance(3, 0, 0), 13);
}

TEST(Torus, MinDistanceSumsDimensions) {
  const KAryNCube topo(make(16, 2, true, true));
  const NodeId a = topo.coordinates().pack({2, 3});
  const NodeId b = topo.coordinates().pack({15, 10});
  EXPECT_EQ(topo.min_distance(a, b), 3 + 7);
}

TEST(Torus, BidirectionalDistanceIsSymmetric) {
  const KAryNCube topo(make(9, 2, true, true));
  for (NodeId a = 0; a < topo.num_nodes(); a += 5) {
    for (NodeId b = 0; b < topo.num_nodes(); b += 7) {
      EXPECT_EQ(topo.min_distance(a, b), topo.min_distance(b, a));
    }
  }
}

TEST(Torus, MinimalDirsSingleWhenOneShortest) {
  const KAryNCube topo(make(16, 1, true, true));
  const DimRoute fwd = topo.minimal_dirs(0, 3, 0);
  ASSERT_EQ(fwd.count, 1);
  EXPECT_EQ(fwd.dirs[0], +1);
  const DimRoute bwd = topo.minimal_dirs(0, 13, 0);
  ASSERT_EQ(bwd.count, 1);
  EXPECT_EQ(bwd.dirs[0], -1);
}

TEST(Torus, MinimalDirsTieOffersBothAndListsPositiveFirst) {
  const KAryNCube topo(make(16, 1, true, true));
  const DimRoute tie = topo.minimal_dirs(0, 8, 0);
  ASSERT_EQ(tie.count, 2);
  EXPECT_EQ(tie.dirs[0], +1);
  EXPECT_EQ(tie.dirs[1], -1);
}

TEST(Torus, MinimalDirsAlignedIsEmpty) {
  const KAryNCube topo(make(16, 2, true, true));
  EXPECT_EQ(topo.minimal_dirs(5, 5, 0).count, 0);
}

TEST(Torus, MinimalDirsUnidirectionalAlwaysPositive) {
  const KAryNCube topo(make(16, 1, false, true));
  const DimRoute r = topo.minimal_dirs(5, 2, 0);
  ASSERT_EQ(r.count, 1);
  EXPECT_EQ(r.dirs[0], +1);
}

TEST(Torus, AverageDistanceMatchesClosedForms) {
  // Bidirectional even-k torus: k/4 per dimension (before the src!=dst
  // conditioning factor N/(N-1)).
  const KAryNCube bi(make(16, 2, true, true));
  EXPECT_NEAR(bi.average_distance(), 8.0 * 256.0 / 255.0, 1e-12);

  // Unidirectional: (k-1)/2 per dimension.
  const KAryNCube uni(make(16, 2, false, true));
  EXPECT_NEAR(uni.average_distance(), 15.0 * 256.0 / 255.0, 1e-12);

  // 4-ary 4-cube: k/4 = 1 per dimension, 4 dimensions.
  const KAryNCube hyper(make(4, 4, true, true));
  EXPECT_NEAR(hyper.average_distance(), 4.0 * 256.0 / 255.0, 1e-12);

  // Mesh: (k^2 - 1) / (3k) per dimension.
  const KAryNCube mesh(make(4, 2, true, false));
  EXPECT_NEAR(mesh.average_distance(), 2.0 * (15.0 / 12.0) * 16.0 / 15.0, 1e-12);
}

TEST(Torus, AverageDistanceMatchesBruteForce) {
  const KAryNCube topo(make(6, 2, true, true));
  double total = 0.0;
  std::int64_t pairs = 0;
  for (NodeId a = 0; a < topo.num_nodes(); ++a) {
    for (NodeId b = 0; b < topo.num_nodes(); ++b) {
      if (a == b) continue;
      total += topo.min_distance(a, b);
      ++pairs;
    }
  }
  EXPECT_NEAR(topo.average_distance(), total / static_cast<double>(pairs), 1e-9);
}

// Parameterized structural sweep: every (k, n, bidir) combination keeps the
// basic channel-table invariants.
class TorusSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(TorusSweep, ChannelTableIsConsistent) {
  const auto [k, n, bidir] = GetParam();
  const KAryNCube topo(make(k, n, bidir, true));
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const ChannelDesc& ch : topo.channels()) {
    EXPECT_GE(ch.src, 0);
    EXPECT_LT(ch.src, topo.num_nodes());
    EXPECT_NE(ch.src, ch.dst);
    EXPECT_EQ(topo.min_distance(ch.src, ch.dst), 1);
    // No duplicate directed links between the same pair within a dimension.
    EXPECT_TRUE(seen.insert({ch.src * 1000 + ch.dim, ch.dst}).second);
  }
  const std::size_t expected =
      static_cast<std::size_t>(topo.num_nodes()) * n * (bidir ? 2 : 1);
  EXPECT_EQ(topo.channels().size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TorusSweep,
    ::testing::Combine(::testing::Values(3, 4, 8, 16),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(true, false)));

}  // namespace
}  // namespace flexnet
