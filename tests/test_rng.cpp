#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace flexnet {
namespace {

TEST(SplitMix64, KnownValuesAreStable) {
  // Fixed outputs guard against accidental algorithm changes that would
  // silently alter every experiment's random stream.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_NE(splitmix64(2), splitmix64(3));
}

TEST(Pcg32, DeterministicForEqualSeeds) {
  Pcg32 a(42, 7);
  Pcg32 b(42, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(1);
  Pcg32 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32, DifferentStreamsDiverge) {
  Pcg32 a(42, 0);
  Pcg32 b(42, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32, BoundedStaysInRangeAndCoversAllValues) {
  Pcg32 rng(123);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t v = rng.bounded(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Pcg32, BoundedEdgeCases) {
  Pcg32 rng(5);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Pcg32, UniformWithinUnitInterval) {
  Pcg32 rng(9);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Pcg32, ChanceMatchesProbability) {
  Pcg32 rng(11);
  int hits = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(Pcg32, ChanceExtremes) {
  Pcg32 rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Pcg32, SaveRestoreReproducesTheStream) {
  // The snapshot subsystem relies on this exactly: capture the state at an
  // arbitrary position, keep drawing, then restore — the restored generator
  // must replay the identical suffix of the stream.
  Pcg32 rng(99, 3);
  for (int i = 0; i < 1234; ++i) (void)rng();
  const Pcg32::State mark = rng.save();
  EXPECT_EQ(mark.draws, 1234u);

  std::vector<std::uint32_t> expected;
  for (int i = 0; i < 500; ++i) expected.push_back(rng());
  EXPECT_EQ(rng.draws(), 1734u);

  Pcg32 other(1);  // deliberately different seed: restore overrides it all
  other.restore(mark);
  EXPECT_EQ(other.save(), mark);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(other(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(Pcg32, DrawCounterTracksEveryKindOfDraw) {
  Pcg32 rng(7);
  (void)rng();
  (void)rng.bounded(10);     // may draw multiple times (rejection sampling)
  (void)rng.chance(0.5);
  const std::uint64_t draws = rng.draws();
  EXPECT_GE(draws, 3u);
  // Replaying the same calls from the saved start reaches the same position.
  Pcg32 replay(7);
  (void)replay();
  (void)replay.bounded(10);
  (void)replay.chance(0.5);
  EXPECT_EQ(replay.draws(), draws);
  EXPECT_EQ(replay.save(), rng.save());
}

TEST(Pcg32, BoundedIsUnbiasedAcrossBuckets) {
  Pcg32 rng(17);
  std::vector<int> counts(10, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.bounded(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kSamples, 0.1, 0.01);
  }
}

}  // namespace
}  // namespace flexnet
