// Live end-to-end detection: a deterministic wrap-around ring deadlock is
// constructed on a 4-node unidirectional torus, detected as a knot, broken by
// recovery, and the network drains. Also exercises the quiescence filter and
// detection cadence.
#include <gtest/gtest.h>

#include <memory>

#include "core/detector.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "topo/torus.hpp"

namespace flexnet {
namespace {

SimConfig ring_config() {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 1;
  cfg.topology.bidirectional = false;  // unidirectional ring
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 8;
  cfg.buffer_depth = 2;
  return cfg;
}

/// Injects one message from every node two hops ahead; with one VC these
/// four messages always close the ring into a genuine deadlock.
std::unique_ptr<Network> deadlocked_ring() {
  const SimConfig cfg = ring_config();
  auto net = std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  for (NodeId n = 0; n < 4; ++n) {
    net->enqueue_message(n, (n + 2) % 4, 8);
  }
  return net;
}

TEST(DetectorLive, RingDeadlockIsDetectedExactly) {
  auto net = deadlocked_ring();
  DetectorConfig cfg;
  cfg.recovery = RecoveryKind::None;
  DeadlockDetector detector(cfg, 1);

  for (int i = 0; i < 100; ++i) net->step();
  net->check_invariants();

  ASSERT_EQ(detector.run_detection(*net), 1);
  ASSERT_EQ(detector.records().size(), 1u);
  const DeadlockRecord& record = detector.records().front();
  EXPECT_EQ(record.deadlock_set_size, 4);
  EXPECT_EQ(record.knot_size, 4);  // the four ring channels
  EXPECT_EQ(record.knot_cycle_density, 1);
  EXPECT_FALSE(record.multi_cycle());
  // Each message holds its injection VC plus one ring channel.
  EXPECT_EQ(record.resource_set_size, 8);
  EXPECT_EQ(record.victim, kInvalidMessage);  // recovery disabled
}

TEST(DetectorLive, DeadlockedMessagesAreImmobile) {
  auto net = deadlocked_ring();
  for (int i = 0; i < 100; ++i) net->step();
  for (const MessageId id : net->active_messages()) {
    EXPECT_TRUE(net->message_immobile(id));
  }
}

TEST(DetectorLive, WithoutRecoveryTheKnotPersistsForever) {
  auto net = deadlocked_ring();
  DetectorConfig cfg;
  cfg.interval = 10;
  cfg.recovery = RecoveryKind::None;
  DeadlockDetector detector(cfg, 1);
  for (int i = 0; i < 500; ++i) {
    net->step();
    detector.tick(*net);
  }
  // Re-detected at every invocation once quiescent.
  EXPECT_GT(detector.total_deadlocks(), 30);
  EXPECT_EQ(net->counters().delivered, 0);
}

TEST(DetectorLive, RecoveryBreaksTheDeadlockAndTheNetworkDrains) {
  auto net = deadlocked_ring();
  DetectorConfig cfg;
  cfg.interval = 50;
  cfg.recovery = RecoveryKind::RemoveOldest;
  DeadlockDetector detector(cfg, 1);
  for (int i = 0; i < 2000; ++i) {
    net->step();
    detector.tick(*net);
  }
  EXPECT_EQ(detector.total_deadlocks(), 1);
  EXPECT_EQ(net->counters().recovered, 1);
  EXPECT_EQ(net->counters().delivered, 3);
  EXPECT_TRUE(net->active_messages().empty());
  net->check_invariants();
  ASSERT_EQ(detector.records().size(), 1u);
  EXPECT_NE(detector.records().front().victim, kInvalidMessage);
}

TEST(DetectorLive, QuiescenceFilterDefersFormingKnots) {
  // Detect every cycle: while the four messages are still streaming flits
  // out of their sources the CWG already contains the knot, but the
  // configuration is not yet immobile. Those sightings must be counted as
  // transient, and exactly one true deadlock must emerge once quiescent.
  auto net = deadlocked_ring();
  DetectorConfig cfg;
  cfg.interval = 1;
  cfg.recovery = RecoveryKind::None;
  DeadlockDetector detector(cfg, 1);
  Cycle first_true_detection = -1;
  for (int i = 0; i < 60; ++i) {
    net->step();
    if (detector.tick(*net) > 0 && first_true_detection < 0) {
      first_true_detection = net->now();
    }
  }
  EXPECT_GT(detector.transient_knots(), 0)
      << "the knot should be visible before quiescence";
  EXPECT_GT(first_true_detection, 0);
  EXPECT_GT(detector.total_deadlocks(), 0);
}

TEST(DetectorLive, WithoutQuiescenceTheKnotIsCountedEarlier) {
  auto net_a = deadlocked_ring();
  auto net_b = deadlocked_ring();
  DetectorConfig strict;
  strict.interval = 1;
  strict.recovery = RecoveryKind::None;
  DetectorConfig eager = strict;
  eager.require_quiescence = false;
  DeadlockDetector strict_det(strict, 1);
  DeadlockDetector eager_det(eager, 1);

  Cycle strict_first = -1;
  Cycle eager_first = -1;
  for (int i = 0; i < 60; ++i) {
    net_a->step();
    net_b->step();
    if (strict_det.tick(*net_a) > 0 && strict_first < 0) strict_first = net_a->now();
    if (eager_det.tick(*net_b) > 0 && eager_first < 0) eager_first = net_b->now();
  }
  ASSERT_GT(strict_first, 0);
  ASSERT_GT(eager_first, 0);
  EXPECT_LT(eager_first, strict_first);
  EXPECT_EQ(eager_det.transient_knots(), 0);
}

TEST(DetectorLive, TwoIndependentDeadlocksHandledInOnePass) {
  // Two rows of a 4x4 unidirectional torus each closed into their own ring
  // deadlock: one detection pass must report two knots and break both.
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 2;
  cfg.topology.bidirectional = false;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 8;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  const auto node = [&](int x, int y) {
    return torus_topology(net.topology()).coordinates().pack({x, y});
  };
  for (int i = 0; i < 4; ++i) {
    net.enqueue_message(node(i, 0), node((i + 2) % 4, 0), 8);
    net.enqueue_message(node(i, 2), node((i + 2) % 4, 2), 8);
  }
  for (int i = 0; i < 200; ++i) net.step();

  DetectorConfig det;
  det.recovery = RecoveryKind::RemoveOldest;
  DeadlockDetector detector(det, 1);
  EXPECT_EQ(detector.run_detection(net), 2);
  EXPECT_EQ(net.counters().recovered, 2);  // one victim per knot
  for (int i = 0; i < 2000; ++i) net.step();
  EXPECT_TRUE(net.active_messages().empty());
  EXPECT_EQ(net.counters().delivered, 6);
  net.check_invariants();
}

TEST(DetectorLive, IntervalGatesInvocations) {
  auto net = deadlocked_ring();
  DetectorConfig cfg;
  cfg.interval = 50;
  cfg.recovery = RecoveryKind::None;
  DeadlockDetector detector(cfg, 1);
  for (int i = 0; i < 200; ++i) {
    net->step();
    detector.tick(*net);
  }
  EXPECT_EQ(detector.invocations(), 4);
}

TEST(DetectorLive, ResetStatisticsClearsWindows) {
  auto net = deadlocked_ring();
  DetectorConfig cfg;
  cfg.recovery = RecoveryKind::None;
  DeadlockDetector detector(cfg, 1);
  for (int i = 0; i < 100; ++i) net->step();
  detector.run_detection(*net);
  ASSERT_GT(detector.total_deadlocks(), 0);
  detector.reset_statistics();
  EXPECT_EQ(detector.total_deadlocks(), 0);
  EXPECT_TRUE(detector.records().empty());
  EXPECT_TRUE(detector.cycle_samples().empty());
}

TEST(DetectorLive, CycleSamplingRecordsCounts) {
  auto net = deadlocked_ring();
  DetectorConfig cfg;
  cfg.interval = 10;
  cfg.recovery = RecoveryKind::None;
  cfg.count_total_cycles = true;
  cfg.cycle_sample_every = 2;
  DeadlockDetector detector(cfg, 1);
  for (int i = 0; i < 200; ++i) {
    net->step();
    detector.tick(*net);
  }
  ASSERT_FALSE(detector.cycle_samples().empty());
  EXPECT_EQ(detector.invocations(), 20);
  EXPECT_EQ(detector.cycle_samples().size(), 10u);
  // Once the ring closes there is exactly one resource dependency cycle.
  EXPECT_EQ(detector.cycle_samples().back().cycles, 1);
  EXPECT_EQ(detector.cycle_samples().back().blocked_messages, 4);
}

}  // namespace
}  // namespace flexnet
