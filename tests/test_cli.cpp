#include "exp/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flexnet {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  const auto opts = Options::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(opts.has_value());
  return *opts;
}

TEST(Cli, EnumParsersRoundTrip) {
  EXPECT_EQ(parse_routing("DOR"), RoutingKind::DOR);
  EXPECT_EQ(parse_routing("DuatoTFAR"), RoutingKind::DuatoTFAR);
  EXPECT_EQ(parse_selection("Random"), SelectionKind::Random);
  EXPECT_EQ(parse_traffic("BitReversal"), TrafficKind::BitReversal);
  EXPECT_EQ(parse_recovery("RemoveRandom"), RecoveryKind::RemoveRandom);
  EXPECT_THROW((void)parse_routing("XYZ"), std::invalid_argument);
  EXPECT_THROW((void)parse_selection(""), std::invalid_argument);
  EXPECT_THROW((void)parse_traffic("uniform"), std::invalid_argument);
  EXPECT_THROW((void)parse_recovery("oldest"), std::invalid_argument);
}

TEST(Cli, DefaultsMatchPaperBaseline) {
  const ExperimentConfig cfg = experiment_from_options(parse({}));
  EXPECT_EQ(cfg.sim.topology.k, 16);
  EXPECT_EQ(cfg.sim.topology.n, 2);
  EXPECT_TRUE(cfg.sim.topology.bidirectional);
  EXPECT_EQ(cfg.sim.vcs, 1);
  EXPECT_EQ(cfg.sim.routing, RoutingKind::TFAR);
  EXPECT_EQ(cfg.traffic.pattern, TrafficKind::Uniform);
  EXPECT_EQ(cfg.detector.interval, 50);
  EXPECT_TRUE(cfg.detector.require_quiescence);
}

TEST(Cli, FullConfiguration) {
  const ExperimentConfig cfg = experiment_from_options(
      parse({"--k", "8", "--n", "3", "--uni", "--vcs", "2", "--buffer", "4",
             "--length", "16", "--routing", "DOR", "--selection",
             "LowestIndex", "--traffic", "HotSpot", "--hotspots", "2",
             "--hotspot-fraction", "0.4", "--load", "0.33", "--interval",
             "25", "--recovery", "RemoveNewest", "--warmup", "123",
             "--measure", "456", "--seed", "9", "--queue-limit", "7"}));
  EXPECT_EQ(cfg.sim.topology.k, 8);
  EXPECT_EQ(cfg.sim.topology.n, 3);
  EXPECT_FALSE(cfg.sim.topology.bidirectional);
  EXPECT_EQ(cfg.sim.vcs, 2);
  EXPECT_EQ(cfg.sim.buffer_depth, 4);
  EXPECT_EQ(cfg.sim.message_length, 16);
  EXPECT_EQ(cfg.sim.routing, RoutingKind::DOR);
  EXPECT_EQ(cfg.sim.selection, SelectionKind::LowestIndex);
  EXPECT_EQ(cfg.traffic.pattern, TrafficKind::HotSpot);
  EXPECT_EQ(cfg.traffic.hotspot_nodes, 2);
  EXPECT_DOUBLE_EQ(cfg.traffic.hotspot_fraction, 0.4);
  EXPECT_DOUBLE_EQ(cfg.traffic.load, 0.33);
  EXPECT_EQ(cfg.detector.interval, 25);
  EXPECT_EQ(cfg.detector.recovery, RecoveryKind::RemoveNewest);
  EXPECT_EQ(cfg.run.warmup, 123);
  EXPECT_EQ(cfg.run.measure, 456);
  EXPECT_EQ(cfg.sim.seed, 9u);
  EXPECT_EQ(cfg.sim.source_queue_limit, 7);
}

TEST(Cli, MeshAndHybridAndFaults) {
  const ExperimentConfig cfg = experiment_from_options(
      parse({"--mesh", "--routing", "NegativeFirst", "--hybrid", "Transpose",
             "--hybrid-fraction", "0.25"}));
  EXPECT_FALSE(cfg.sim.topology.wrap);
  EXPECT_EQ(cfg.sim.routing, RoutingKind::NegativeFirst);
  EXPECT_EQ(cfg.traffic.hybrid_with, TrafficKind::Transpose);
  EXPECT_DOUBLE_EQ(cfg.traffic.hybrid_fraction, 0.25);

  const ExperimentConfig faulty = experiment_from_options(
      parse({"--routing", "TFAR", "--faults", "0.1"}));
  EXPECT_DOUBLE_EQ(faulty.sim.link_fault_fraction, 0.1);
}

TEST(Cli, InvalidCombinationRejectedByValidate) {
  // DOR + faults is invalid; experiment_from_options validates eagerly.
  EXPECT_THROW((void)experiment_from_options(
                   parse({"--routing", "DOR", "--faults", "0.1"})),
               std::invalid_argument);
}

TEST(Cli, QuiescenceAndCycleFlags) {
  const ExperimentConfig cfg = experiment_from_options(
      parse({"--no-quiescence", "--count-cycles", "--cycle-cap", "777"}));
  EXPECT_FALSE(cfg.detector.require_quiescence);
  EXPECT_TRUE(cfg.detector.count_total_cycles);
  EXPECT_EQ(cfg.detector.total_cycle_cap, 777);
}

TEST(Cli, StepDenseFlag) {
  EXPECT_FALSE(experiment_from_options(parse({})).run.step_dense);
  EXPECT_TRUE(experiment_from_options(parse({"--step-dense"})).run.step_dense);
}

TEST(Cli, LoadsListParsing) {
  const std::vector<double> loads =
      loads_from_options(parse({"--loads", "0.1,0.25,0.7"}));
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_DOUBLE_EQ(loads[0], 0.1);
  EXPECT_DOUBLE_EQ(loads[1], 0.25);
  EXPECT_DOUBLE_EQ(loads[2], 0.7);
}

TEST(Cli, LoadsSweepParsing) {
  const std::vector<double> loads = loads_from_options(
      parse({"--load-min", "0.2", "--load-max", "0.4", "--load-steps", "3"}));
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_DOUBLE_EQ(loads[0], 0.2);
  EXPECT_DOUBLE_EQ(loads[1], 0.3);
  EXPECT_DOUBLE_EQ(loads[2], 0.4);
}

TEST(Cli, MalformedLoadsRejected) {
  EXPECT_THROW((void)loads_from_options(parse({"--loads", "abc"})),
               std::invalid_argument);
}

}  // namespace
}  // namespace flexnet
