// Replay-grade determinism: the same (config, seed) must produce a
// byte-identical binary event trace every time, whether points run alone or
// inside a (parallel) sweep. This is the backbone guarantee that makes traces
// usable as reproduction artifacts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/experiment.hpp"
#include "exp/sweep.hpp"

namespace flexnet {
namespace {

ExperimentConfig traced_config() {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 4;
  cfg.sim.topology.bidirectional = false;
  cfg.sim.routing = RoutingKind::DOR;
  cfg.sim.vcs = 1;
  cfg.traffic.load = 0.5;
  cfg.run.warmup = 200;
  cfg.run.measure = 800;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(TraceDeterminism, SameConfigSameSeedSameBytes) {
  ExperimentConfig cfg = traced_config();
  const std::string a = temp_path("det_a.bin");
  const std::string b = temp_path("det_b.bin");

  cfg.trace.binary_path = a;
  (void)run_experiment(cfg);
  cfg.trace.binary_path = b;
  (void)run_experiment(cfg);

  const std::string bytes_a = slurp(a);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, slurp(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TraceDeterminism, DifferentSeedDifferentBytes) {
  ExperimentConfig cfg = traced_config();
  const std::string a = temp_path("det_s1.bin");
  const std::string b = temp_path("det_s2.bin");
  cfg.trace.binary_path = a;
  (void)run_experiment(cfg);
  cfg.sim.seed = 99;
  cfg.trace.binary_path = b;
  (void)run_experiment(cfg);
  EXPECT_NE(slurp(a), slurp(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TraceDeterminism, ParallelSweepMatchesSerialSweep) {
  const std::vector<double> loads{0.3, 0.6, 0.9};

  ExperimentConfig serial_cfg = traced_config();
  serial_cfg.trace.binary_path = temp_path("sweep_serial.bin");
  const auto serial = sweep_loads(serial_cfg, loads, /*parallel=*/false);

  ExperimentConfig parallel_cfg = traced_config();
  parallel_cfg.trace.binary_path = temp_path("sweep_parallel.bin");
  const auto parallel = sweep_loads(parallel_cfg, loads, /*parallel=*/true);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_EQ(serial[i].window.generated, parallel[i].window.generated);
    const std::string suffix = ".p" + std::to_string(i);
    const std::string serial_bytes =
        slurp(serial_cfg.trace.binary_path + suffix);
    ASSERT_FALSE(serial_bytes.empty());
    EXPECT_EQ(serial_bytes, slurp(parallel_cfg.trace.binary_path + suffix))
        << "point " << i;
    std::remove((serial_cfg.trace.binary_path + suffix).c_str());
    std::remove((parallel_cfg.trace.binary_path + suffix).c_str());
  }
}

TEST(TraceDeterminism, ForensicsReportsAreReproducible) {
  ExperimentConfig cfg = traced_config();
  cfg.traffic.load = 0.7;
  cfg.trace.forensics = true;
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  ASSERT_EQ(a.forensics.size(), b.forensics.size());
  for (std::size_t i = 0; i < a.forensics.size(); ++i) {
    EXPECT_EQ(a.forensics[i].detected_at, b.forensics[i].detected_at);
    EXPECT_EQ(a.forensics[i].victim, b.forensics[i].victim);
    EXPECT_EQ(a.forensics[i].dot, b.forensics[i].dot);
    EXPECT_EQ(format_forensics_report(a.forensics[i]),
              format_forensics_report(b.forensics[i]));
  }
}

}  // namespace
}  // namespace flexnet
