// Sharded-vs-1-shard determinism: the parallel stepping engine must be
// byte-identical across EVERY shard count — per-cycle network state bytes,
// detector verdicts, snapshots, traces, metrics streams and telemetry
// manifests. The 1-shard run is the oracle (the sharded engine's semantics
// differ from the serial engine's by design: cycle-start transmit credits and
// hashed selection draws; DESIGN.md §3j). The suite locksteps shard counts
// for DOR, TFAR and TableMin across light / medium / saturation load, adds
// multi-VC adaptive routing with faults, replays the committed deadlock
// corpus, crosses shard counts over a mid-run checkpoint, and pins the
// set_shards validation contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "exp/experiment.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"
#include "snapshot/snapshot.hpp"
#include "traffic/injection.hpp"
#include "util/binio.hpp"

#ifndef FLEXNET_CORPUS_DIR
#error "FLEXNET_CORPUS_DIR must point at the committed tests/corpus directory"
#endif

namespace flexnet {
namespace {

std::vector<std::uint8_t> net_bytes(const Network& net) {
  BinWriter out;
  net.save_state(out);
  return out.bytes();
}

std::vector<std::uint8_t> detector_bytes(const DeadlockDetector& det) {
  BinWriter out;
  det.save_state(out);
  return out.bytes();
}

ExperimentConfig grid_config(RoutingKind routing, double load) {
  ExperimentConfig cfg;
  cfg.sim.topology.k = 8;
  cfg.sim.topology.n = 2;
  cfg.sim.vcs = 1;  // one VC per channel: wrap-around routing can deadlock
  cfg.sim.routing = routing;
  cfg.sim.message_length = 8;
  cfg.sim.seed = 13;
  cfg.traffic.load = load;
  cfg.detector.interval = 5;
  cfg.detector.recovery = RecoveryKind::RemoveOldest;
  return cfg;
}

/// Locksteps the same configuration at 1 shard and at `shards` shards,
/// asserting the full serialized network state matches periodically and every
/// detector verdict matches each cycle.
void run_lockstep(ExperimentConfig cfg, Cycle cycles, int shards) {
  cfg.run.shards = 1;
  ExperimentConfig wide_cfg = cfg;
  wide_cfg.run.shards = shards;
  Simulation one(cfg);
  Simulation wide(wide_cfg);
  ASSERT_EQ(one.network().shards(), 1);
  ASSERT_EQ(wide.network().shards(), shards);

  for (Cycle i = 0; i < cycles; ++i) {
    one.injection().tick(one.network());
    one.network().step();
    const int one_verdict = one.detector().tick(one.network());
    wide.injection().tick(wide.network());
    wide.network().step();
    const int wide_verdict = wide.detector().tick(wide.network());
    ASSERT_EQ(one_verdict, wide_verdict) << "diverged at cycle " << i;
    if (i % 250 == 0) {
      ASSERT_EQ(net_bytes(one.network()), net_bytes(wide.network()))
          << "state diverged by cycle " << i;
    }
  }

  EXPECT_EQ(net_bytes(one.network()), net_bytes(wide.network()));
  EXPECT_EQ(detector_bytes(one.detector()), detector_bytes(wide.detector()));
  EXPECT_EQ(one.network().counters().delivered,
            wide.network().counters().delivered);
  EXPECT_EQ(one.network().counters().recovered,
            wide.network().counters().recovered);
  // The composed epoch (base + per-shard terms) counts each CWG event exactly
  // once regardless of which term absorbed it.
  EXPECT_EQ(one.network().arc_epoch(), wide.network().arc_epoch());
  EXPECT_GT(one.network().counters().delivered, 0);

  // Snapshots never record the execution strategy: both sides encode
  // byte-identically (and identically to what a serial run would restore).
  EXPECT_EQ(encode_snapshot(one.make_checkpoint()),
            encode_snapshot(wide.make_checkpoint()));
}

TEST(ShardedStep, DorLightMediumSaturation) {
  for (const double load : {0.1, 0.5, 0.9}) {
    SCOPED_TRACE(load);
    run_lockstep(grid_config(RoutingKind::DOR, load), 2500, 8);
  }
}

TEST(ShardedStep, TfarLightMediumSaturation) {
  for (const double load : {0.1, 0.5, 0.9}) {
    SCOPED_TRACE(load);
    run_lockstep(grid_config(RoutingKind::TFAR, load), 2500, 8);
  }
}

TEST(ShardedStep, TableMinLightMediumSaturation) {
  for (const double load : {0.1, 0.5, 0.9}) {
    SCOPED_TRACE(load);
    run_lockstep(grid_config(RoutingKind::TableMin, load), 2500, 8);
  }
}

TEST(ShardedStep, UnevenShardCounts) {
  // 64 nodes / 3 and / 7 shards: unequal slabs, shard boundaries that cut
  // rows mid-way. The canonical commits must not care.
  for (const int shards : {3, 7}) {
    SCOPED_TRACE(shards);
    run_lockstep(grid_config(RoutingKind::TFAR, 0.6), 1500, shards);
  }
}

TEST(ShardedStep, OneShardPerNode) {
  // Degenerate maximum: every router its own shard (64 workers on a 64-node
  // grid) — all transmit wakes cross shards.
  run_lockstep(grid_config(RoutingKind::DOR, 0.5), 800, 64);
}

TEST(ShardedStep, MultiVcAdaptiveWithFaults) {
  // Deeper per-channel VC rotation, misroute-capable selection and faulted
  // links: arbitration cursors and hashed selection draws must line up.
  ExperimentConfig cfg = grid_config(RoutingKind::TFAR, 0.6);
  cfg.sim.vcs = 3;
  cfg.sim.link_fault_fraction = 0.05;
  run_lockstep(cfg, 2000, 8);
}

TEST(ShardedStep, CommittedCorpusReplaysAcrossShardCounts) {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(FLEXNET_CORPUS_DIR)) {
    if (entry.path().extension() == ".snap") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());

  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    const Snapshot snap = read_snapshot_file(path);
    RestoredSim one = restore_snapshot(snap);
    RestoredSim wide = restore_snapshot(snap);
    one.net->set_shards(1);
    wide.net->set_shards(8);
    // Restore rebuilds the per-shard active sets from the captured knot: the
    // very first sharded step must see the blocked channels.
    DeadlockDetector one_det(DetectorConfig{.interval = 1}, 99);
    DeadlockDetector wide_det(DetectorConfig{.interval = 1}, 99);

    for (int i = 0; i < 300; ++i) {
      one.injection->tick(*one.net);
      one.net->step();
      const int one_verdict = one_det.tick(*one.net);
      wide.injection->tick(*wide.net);
      wide.net->step();
      const int wide_verdict = wide_det.tick(*wide.net);
      ASSERT_EQ(one_verdict, wide_verdict) << "diverged at step " << i;
    }
    EXPECT_GT(one_det.total_deadlocks(), 0) << "capture should re-deadlock";
    EXPECT_EQ(net_bytes(*one.net), net_bytes(*wide.net));
    EXPECT_EQ(detector_bytes(one_det), detector_bytes(wide_det));
  }
}

TEST(ShardedStep, CheckpointCrossesShardCounts) {
  // A checkpoint captured at 4 shards resumes at 1 and at 8: the shard count
  // is an execution detail the format never records.
  ExperimentConfig cfg = grid_config(RoutingKind::DOR, 0.7);
  cfg.run.shards = 4;
  Simulation original(cfg);
  for (Cycle i = 0; i < 1500; ++i) {
    original.injection().tick(original.network());
    original.network().step();
    original.detector().tick(original.network());
  }

  const Snapshot snap = original.make_checkpoint();
  RestoredSim narrow = restore_snapshot(snap);
  narrow.net->set_shards(1);
  RestoredSim wide = restore_snapshot(snap);
  wide.net->set_shards(8);
  EXPECT_EQ(net_bytes(*narrow.net), net_bytes(original.network()));
  EXPECT_EQ(net_bytes(*wide.net), net_bytes(original.network()));

  for (Cycle i = 0; i < 800; ++i) {
    original.injection().tick(original.network());
    original.network().step();
    const int original_verdict = original.detector().tick(original.network());
    narrow.injection->tick(*narrow.net);
    narrow.net->step();
    const int narrow_verdict = narrow.detector->tick(*narrow.net);
    wide.injection->tick(*wide.net);
    wide.net->step();
    const int wide_verdict = wide.detector->tick(*wide.net);
    ASSERT_EQ(original_verdict, narrow_verdict) << "diverged at cycle " << i;
    ASSERT_EQ(original_verdict, wide_verdict) << "diverged at cycle " << i;
  }
  EXPECT_EQ(net_bytes(*narrow.net), net_bytes(original.network()));
  EXPECT_EQ(net_bytes(*wide.net), net_bytes(original.network()));
}

TEST(ShardedStep, RecoveryWakeupsDrainTheNetwork) {
  // 4-node unidirectional ring, every node sending two hops ahead: a
  // permanent deadlock. remove_message() must route its channel wakeups into
  // the owning shards' sets, or the survivors never drain.
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 1;
  cfg.topology.bidirectional = false;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = 8;
  cfg.buffer_depth = 2;
  NetworkDeps deps;
  deps.routing = make_routing(cfg);
  deps.selection = make_selection(cfg.selection);
  Network net(cfg, std::move(deps));
  net.set_shards(2);
  std::vector<MessageId> ids;
  for (NodeId n = 0; n < 4; ++n) {
    ids.push_back(net.enqueue_message(n, (n + 2) % 4, 8));
  }
  for (int i = 0; i < 200; ++i) net.step();
  ASSERT_EQ(net.counters().delivered, 0) << "ring should be deadlocked";
  for (const MessageId id : ids) {
    ASSERT_TRUE(net.message_immobile(id));
  }

  net.remove_message(ids.front());
  for (int i = 0; i < 500 && net.counters().delivered < 3; ++i) net.step();
  EXPECT_EQ(net.counters().delivered, 3)
      << "survivors did not drain after recovery";
  EXPECT_EQ(net.counters().recovered, 1);
  net.check_invariants();
}

TEST(ShardedStep, SetShardsValidation) {
  SimConfig cfg;
  cfg.topology.k = 4;
  cfg.topology.n = 1;
  NetworkDeps deps;
  deps.routing = make_routing(cfg);
  deps.selection = make_selection(cfg.selection);
  Network net(cfg, std::move(deps));
  EXPECT_EQ(net.shards(), 0);
  EXPECT_THROW(net.set_shards(-1), std::invalid_argument);
  EXPECT_THROW(net.set_shards(5), std::invalid_argument);  // > 4 nodes
  net.set_step_dense(true);
  EXPECT_THROW(net.set_shards(2), std::invalid_argument);
  net.set_step_dense(false);
  net.set_shards(2);
  EXPECT_EQ(net.shards(), 2);
  net.set_shards(0);  // back to the serial engine
  EXPECT_EQ(net.shards(), 0);
}

TEST(ShardedStep, ReshardMidRunAndEpochMonotonicity) {
  // Flipping the shard count between steps preserves state, scheduling and
  // the monotonic composed epoch (terms fold into the base on reshard).
  ExperimentConfig cfg = grid_config(RoutingKind::TFAR, 0.6);
  cfg.run.shards = 1;
  ExperimentConfig hop_cfg = cfg;
  Simulation steady(cfg);
  Simulation hopping(hop_cfg);
  const int plan[] = {1, 4, 2, 8, 1, 3};
  std::uint64_t last_epoch = 0;
  for (int leg = 0; leg < 6; ++leg) {
    hopping.network().set_shards(plan[leg]);
    EXPECT_GE(hopping.network().arc_epoch(), last_epoch);
    for (Cycle i = 0; i < 300; ++i) {
      steady.injection().tick(steady.network());
      steady.network().step();
      steady.detector().tick(steady.network());
      hopping.injection().tick(hopping.network());
      hopping.network().step();
      hopping.detector().tick(hopping.network());
    }
    last_epoch = hopping.network().arc_epoch();
    ASSERT_EQ(net_bytes(steady.network()), net_bytes(hopping.network()))
        << "diverged after leg " << leg;
    hopping.network().check_invariants();
  }
  EXPECT_EQ(steady.network().arc_epoch(), hopping.network().arc_epoch());
}

/// Removes the manifest's "profile" object — the only block whose values are
/// wall-clock dependent — by brace-balancing from its key.
std::string strip_profile(std::string text) {
  const std::size_t key = text.find("\"profile\":");
  if (key == std::string::npos) return text;
  std::size_t open = text.find('{', key);
  int depth = 0;
  std::size_t end = open;
  for (; end < text.size(); ++end) {
    if (text[end] == '{') ++depth;
    if (text[end] == '}' && --depth == 0) break;
  }
  text.erase(key, end - key + 1);
  return text;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ShardedStep, ManifestAndMetricsStreamsByteIdentical) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "flexnet_sharded_step";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ExperimentConfig cfg = grid_config(RoutingKind::TFAR, 0.6);
  cfg.run.warmup = 500;
  cfg.run.measure = 2000;
  cfg.obs.collect = true;
  cfg.obs.interval = 50;

  ExperimentConfig one_cfg = cfg;
  one_cfg.run.shards = 1;
  one_cfg.telemetry.manifest_path = (dir / "one.json").string();
  one_cfg.obs.metrics_path = (dir / "one.ndjson").string();
  ExperimentConfig wide_cfg = cfg;
  wide_cfg.run.shards = 8;
  wide_cfg.telemetry.manifest_path = (dir / "wide.json").string();
  wide_cfg.obs.metrics_path = (dir / "wide.ndjson").string();

  const ExperimentResult one_result = run_experiment(one_cfg);
  const ExperimentResult wide_result = run_experiment(wide_cfg);
  EXPECT_EQ(one_result.window.delivered, wide_result.window.delivered);
  EXPECT_EQ(one_result.window.deadlocks, wide_result.window.deadlocks);

  // The metrics NDJSON stream carries only simulation-derived values and must
  // match byte for byte; the manifest matches once its profiler timings (the
  // one wall-clock block) are stripped and the self-referential metrics path
  // is neutralized.
  EXPECT_EQ(read_file(dir / "one.ndjson"), read_file(dir / "wide.ndjson"));
  const auto neutralize = [](std::string text, const std::string& path) {
    const std::size_t at = text.find(path);
    if (at != std::string::npos) text.replace(at, path.size(), "<metrics>");
    return text;
  };
  const std::string one_manifest = neutralize(
      strip_profile(read_file(dir / "one.json")), one_cfg.obs.metrics_path);
  const std::string wide_manifest = neutralize(
      strip_profile(read_file(dir / "wide.json")), wide_cfg.obs.metrics_path);
  ASSERT_FALSE(one_manifest.empty());
  EXPECT_EQ(one_manifest, wide_manifest);
  std::filesystem::remove_all(dir);
}

TEST(ShardedStep, BinaryTracesByteIdentical) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "flexnet_sharded_trace";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ExperimentConfig cfg = grid_config(RoutingKind::TFAR, 0.7);
  cfg.run.warmup = 300;
  cfg.run.measure = 1200;

  ExperimentConfig one_cfg = cfg;
  one_cfg.run.shards = 1;
  one_cfg.trace.binary_path = (dir / "one.trace").string();
  ExperimentConfig wide_cfg = cfg;
  wide_cfg.run.shards = 6;
  wide_cfg.trace.binary_path = (dir / "wide.trace").string();

  (void)run_experiment(one_cfg);
  (void)run_experiment(wide_cfg);
  const std::string one_trace = read_file(dir / "one.trace");
  ASSERT_FALSE(one_trace.empty());
  EXPECT_EQ(one_trace, read_file(dir / "wide.trace"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace flexnet
