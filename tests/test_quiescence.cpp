// Precise semantics of Network::message_immobile — the quiescence predicate
// that turns an instantaneous knot into a *true* deadlock.
#include <gtest/gtest.h>

#include <memory>

#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/network.hpp"

namespace flexnet {
namespace {

std::unique_ptr<Network> uni_ring(int k, int length, int buffer) {
  SimConfig cfg;
  cfg.topology.k = k;
  cfg.topology.n = 1;
  cfg.topology.bidirectional = false;
  cfg.routing = RoutingKind::DOR;
  cfg.message_length = length;
  cfg.buffer_depth = buffer;
  return std::make_unique<Network>(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
}

TEST(Quiescence, MovingMessagesAreNeverImmobile) {
  auto net = uni_ring(4, 8, 2);
  const MessageId id = net->enqueue_message(0, 2, 8);
  for (int i = 0; i < 6; ++i) {
    net->step();
    if (net->message(id).status == MessageStatus::InFlight) {
      EXPECT_FALSE(net->message_immobile(id));
    }
  }
}

TEST(Quiescence, QueuedAndFinishedMessagesAreNotImmobile) {
  auto net = uni_ring(4, 8, 2);
  const MessageId id = net->enqueue_message(0, 1, 8);
  EXPECT_FALSE(net->message_immobile(id));  // still queued
  while (net->message(id).status != MessageStatus::Delivered) {
    net->step();
    ASSERT_LT(net->now(), 100);
  }
  EXPECT_FALSE(net->message_immobile(id));  // delivered
}

TEST(Quiescence, BlockedMessageWithSlackIsMobileUntilCompacted) {
  // A long blocker holds the channel the probe needs; the probe still has
  // unsent flits and buffer slack, so immobility must lag blockedness.
  auto net = uni_ring(8, 16, 2);
  net->enqueue_message(1, 5, 16);            // blocker: holds 1->2.. first
  const MessageId probe = net->enqueue_message(0, 2, 16);
  bool seen_blocked_but_mobile = false;
  for (int i = 0; i < 12; ++i) {
    net->step();
    const Message& m = net->message(probe);
    if (m.status == MessageStatus::InFlight && m.blocked &&
        !net->message_immobile(probe)) {
      seen_blocked_but_mobile = true;
    }
  }
  EXPECT_TRUE(seen_blocked_but_mobile)
      << "a freshly blocked message still compacting must not be immobile";
}

TEST(Quiescence, FullyCompactedBlockedMessageIsImmobile) {
  // Four messages close the 4-ring into a deadlock; after enough cycles all
  // buffers are full and every one is immobile.
  auto net = uni_ring(4, 8, 2);
  for (NodeId n = 0; n < 4; ++n) net->enqueue_message(n, (n + 2) % 4, 8);
  for (int i = 0; i < 120; ++i) net->step();
  ASSERT_EQ(net->active_messages().size(), 4u);
  for (const MessageId id : net->active_messages()) {
    EXPECT_TRUE(net->message(id).blocked);
    EXPECT_TRUE(net->message_immobile(id));
  }
}

TEST(Quiescence, ImmobilityIsPermanentWithoutIntervention) {
  auto net = uni_ring(4, 8, 2);
  for (NodeId n = 0; n < 4; ++n) net->enqueue_message(n, (n + 2) % 4, 8);
  for (int i = 0; i < 120; ++i) net->step();
  std::vector<std::int32_t> sent_before;
  for (const MessageId id : net->active_messages()) {
    sent_before.push_back(net->message(id).flits_sent +
                          net->message(id).flits_delivered);
  }
  for (int i = 0; i < 2000; ++i) net->step();
  std::size_t at = 0;
  for (const MessageId id : net->active_messages()) {
    EXPECT_EQ(net->message(id).flits_sent + net->message(id).flits_delivered,
              sent_before[at++]);
    EXPECT_TRUE(net->message_immobile(id));
  }
}

TEST(Quiescence, RecoveryRestoresMobility) {
  auto net = uni_ring(4, 8, 2);
  for (NodeId n = 0; n < 4; ++n) net->enqueue_message(n, (n + 2) % 4, 8);
  for (int i = 0; i < 120; ++i) net->step();
  const MessageId victim = net->active_messages().front();
  net->remove_message(victim);
  for (int i = 0; i < 500; ++i) net->step();
  EXPECT_EQ(net->counters().delivered, 3);
  EXPECT_TRUE(net->active_messages().empty());
}

TEST(Quiescence, VctDeadlockCompactsIntoSingleBuffers) {
  // With buffers as deep as messages (virtual cut-through), the same ring
  // deadlock quiesces with each message fully inside one buffer.
  auto net = uni_ring(4, 8, 8);
  for (NodeId n = 0; n < 4; ++n) net->enqueue_message(n, (n + 2) % 4, 8);
  for (int i = 0; i < 200; ++i) net->step();
  ASSERT_EQ(net->active_messages().size(), 4u);
  for (const MessageId id : net->active_messages()) {
    const Message& m = net->message(id);
    EXPECT_TRUE(net->message_immobile(id));
    // All 8 flits sit in the single network VC the message owns.
    ASSERT_EQ(m.held.size(), 1u);
    EXPECT_EQ(net->vc(m.held.front()).buffer.size(), 8);
  }
}

}  // namespace
}  // namespace flexnet
