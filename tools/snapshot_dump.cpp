// Inspector + replay driver for flexnet-snap-v1 snapshot files.
//
//   snapshot_dump FILE...            print each snapshot's header + configs
//   snapshot_dump --replay FILE...   additionally restore each DeadlockCapture
//                                    and re-run knot detection, checking the
//                                    fresh verdict against the recorded one
//
// Exit status: 0 when every file decodes (and, with --replay, every capture
// reproduces its recorded verdict), 1 otherwise — so the corpus doubles as a
// scriptable regression gate in CI.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "flexnet.hpp"

namespace {

using namespace flexnet;

const char* kind_name(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::Checkpoint: return "checkpoint";
    case SnapshotKind::DeadlockCapture: return "deadlock-capture";
  }
  return "?";
}

void print_snapshot(const std::string& path, const Snapshot& snap) {
  const SnapshotMeta& m = snap.meta;
  std::printf("%s\n", path.c_str());
  std::printf("  kind        %s\n", kind_name(m.kind));
  std::printf("  cycle       %lld (%s; warmup %lld, measure %lld)\n",
              static_cast<long long>(m.cycle),
              m.measuring ? "measuring" : "warmup",
              static_cast<long long>(m.warmup),
              static_cast<long long>(m.measure));
  if (snap.sim.topo_kind == TopoKind::Torus) {
    std::printf(
        "  topology    %d-ary %d-cube %s %s, %d VC(s), depth %d\n",
        snap.sim.topology.k, snap.sim.topology.n,
        snap.sim.topology.bidirectional ? "bidirectional" : "unidirectional",
        snap.sim.topology.wrap ? "torus" : "mesh", snap.sim.vcs,
        snap.sim.buffer_depth);
  } else {
    std::printf("  topology    %s", snap.topo.name.c_str());
    if (snap.topo.present) {
      std::printf(" (%d nodes, %zu links embedded, hash %016llx)",
                  snap.topo.nodes, snap.topo.links.size(),
                  static_cast<unsigned long long>(snap.topo.content_hash));
    }
    std::printf(", %d VC(s), depth %d\n", snap.sim.vcs, snap.sim.buffer_depth);
  }
  std::printf("  routing     %s / %s, recovery %s\n",
              std::string(to_string(snap.sim.routing)).c_str(),
              std::string(to_string(snap.sim.selection)).c_str(),
              std::string(to_string(snap.detector.recovery)).c_str());
  std::printf("  traffic     %s load %.3f seed %llu\n",
              std::string(to_string(snap.traffic.pattern)).c_str(),
              snap.traffic.load,
              static_cast<unsigned long long>(snap.sim.seed));
  if (snap.workload.kind == WorkloadKind::Trace) {
    std::printf("  workload    trace:%s\n", snap.workload.trace_path.c_str());
  } else if (snap.workload.kind == WorkloadKind::Paced) {
    std::printf("  workload    pace:%s\n", snap.workload.pace_spec.c_str());
  }
  std::printf("  state bytes net %zu / inj %zu / det %zu / metrics %zu\n",
              snap.network_state.size(), snap.injection_state.size(),
              snap.detector_state.size(), snap.metrics_state.size());
  if (m.kind == SnapshotKind::DeadlockCapture) {
    std::printf(
        "  knot        set %d, resources %d, VCs %d, density %lld, "
        "hash %016llx\n",
        m.deadlock_set_size, m.resource_set_size, m.knot_size,
        static_cast<long long>(m.knot_cycle_density),
        static_cast<unsigned long long>(m.cwg_hash));
  }
}

bool replay_one(const std::string& path, const Snapshot& snap) {
  if (snap.meta.kind != SnapshotKind::DeadlockCapture) {
    std::printf("  replay      skipped (not a deadlock capture)\n");
    return true;
  }
  const ReplayResult r = replay_capture(snap);
  if (r.matches) {
    std::printf("  replay      OK: set %d, resources %d, VCs %d, hash %016llx\n",
                r.deadlock_set_size, r.resource_set_size, r.knot_size,
                static_cast<unsigned long long>(r.cwg_hash));
    return true;
  }
  std::fprintf(stderr, "%s: replay MISMATCH: %s\n", path.c_str(),
               r.detail.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool replay = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--replay") {
      replay = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: snapshot_dump [--replay] FILE...\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: snapshot_dump [--replay] FILE...\n");
    return 1;
  }

  bool ok = true;
  for (const std::string& path : files) {
    try {
      const Snapshot snap = read_snapshot_file(path);
      print_snapshot(path, snap);
      if (replay && !replay_one(path, snap)) ok = false;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
