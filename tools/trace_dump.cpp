// trace_dump: inspect a binary trace written by --trace-bin (BinaryTraceSink).
//
//   ./tools/trace_dump trace.bin                 # print every event
//   ./tools/trace_dump trace.bin --stats         # per-kind counts only
//   ./tools/trace_dump trace.bin --message 42    # one message's history
//   ./tools/trace_dump trace.bin --kind DeadlockDetected
//   ./tools/trace_dump trace.bin --from 1000 --to 2000 --tail 50
#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/sinks.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace flexnet;
  std::string error;
  const auto opts = Options::parse(argc, argv, &error);
  if (!opts) {
    std::fprintf(stderr, "argument error: %s\n", error.c_str());
    return 1;
  }
  if (opts->positional().empty()) {
    std::fprintf(stderr,
                 "usage: trace_dump FILE [--stats] [--message M] [--kind K] "
                 "[--from C] [--to C] [--tail N]\n");
    return 1;
  }

  const std::string path = opts->positional().front();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  std::vector<TraceEvent> events;
  try {
    events = read_binary_trace(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error reading %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  TraceEventKind kind_filter = TraceEventKind::kCount_;
  if (opts->has("kind")) {
    kind_filter = parse_trace_event_kind(opts->get("kind"));
    if (kind_filter == TraceEventKind::kCount_) {
      std::fprintf(stderr, "unknown event kind: %s\n",
                   opts->get("kind").c_str());
      return 1;
    }
  }
  const long long message_filter = opts->get_int("message", -1);
  const long long from = opts->get_int("from", -1);
  const long long to = opts->get_int("to", -1);

  std::vector<TraceEvent> selected;
  for (const TraceEvent& e : events) {
    if (kind_filter != TraceEventKind::kCount_ && e.kind != kind_filter) continue;
    if (message_filter >= 0 && e.message != message_filter) continue;
    if (from >= 0 && e.cycle < from) continue;
    if (to >= 0 && e.cycle > to) continue;
    selected.push_back(e);
  }

  const long long tail = opts->get_int("tail", -1);
  if (tail >= 0 && selected.size() > static_cast<std::size_t>(tail)) {
    selected.erase(selected.begin(),
                   selected.end() - static_cast<std::ptrdiff_t>(tail));
  }

  std::printf("%s: %zu events total, %zu selected\n", path.c_str(),
              events.size(), selected.size());

  std::array<std::int64_t, kNumTraceEventKinds> counts{};
  Cycle first = -1;
  Cycle last = -1;
  for (const TraceEvent& e : selected) {
    const auto kind_index = static_cast<std::size_t>(e.kind);
    if (kind_index < counts.size()) ++counts[kind_index];
    if (first < 0) first = e.cycle;
    last = e.cycle;
  }

  if (opts->get_bool("stats", false)) {
    std::printf("cycles [%lld, %lld]\n", static_cast<long long>(first),
                static_cast<long long>(last));
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      std::printf("  %-18s %lld\n",
                  std::string(to_string(static_cast<TraceEventKind>(i))).c_str(),
                  static_cast<long long>(counts[i]));
    }
    return 0;
  }

  for (const TraceEvent& e : selected) {
    std::printf("@%-8lld %-18s", static_cast<long long>(e.cycle),
                std::string(to_string(e.kind)).c_str());
    if (e.message != kInvalidMessage) std::printf(" m%lld", static_cast<long long>(e.message));
    if (e.vc != kInvalidVc) std::printf(" vc%d", e.vc);
    if (e.vc2 != kInvalidVc) std::printf(" <-vc%d", e.vc2);
    if (e.node != kInvalidNode) std::printf(" @n%d", e.node);
    if (e.arg != 0) std::printf(" arg=%d", e.arg);
    std::printf("\n");
  }
  return 0;
}
