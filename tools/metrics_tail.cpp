// metrics_tail: watch or summarize a flexnet-metrics-v1 NDJSON stream
// written by `--metrics` (ObsCollector).
//
//   ./tools/metrics_tail run.ndjson            # print records as a table
//   ./tools/metrics_tail run.ndjson --follow   # keep polling for new records
//       (live view of a run in another terminal; stops at the final record
//        or after --idle-limit seconds with no growth, 0 = wait forever)
//   ./tools/metrics_tail run.ndjson --summary  # final/cumulative digest only
//
// The table leads with the precursor columns — score, warning, stall age,
// blocked-component size — because the whole point of the stream is seeing a
// deadlock form before the detector confirms it. Malformed lines fail with
// "<path>:<line>: <reason>" and exit 1, same contract as telemetry_dump
// --metrics.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "util/json.hpp"
#include "util/options.hpp"

namespace {

using flexnet::JsonValue;

double num(const JsonValue& obj, std::string_view name) {
  const JsonValue* member = obj.find(name);
  return member != nullptr ? member->number : 0.0;
}

long long integer(const JsonValue& obj, std::string_view name) {
  return static_cast<long long>(num(obj, name));
}

bool flag(const JsonValue& obj, std::string_view name) {
  const JsonValue* member = obj.find(name);
  return member != nullptr && member->boolean;
}

void print_header_line(const JsonValue& header) {
  std::printf("# interval %lld, warn threshold %g, stall ref %lld, "
              "%lld node(s) / %lld VC(s)\n",
              integer(header, "interval"), num(header, "warn_threshold"),
              integer(header, "stall_ref"), integer(header, "nodes"),
              integer(header, "vcs"));
  std::printf("%10s %9s %5s %9s %9s %7s %7s %7s %9s %9s %6s %5s  %s\n",
              "cycle", "score", "warn", "stall_max", "stall_hwm", "blocked",
              "reqarc", "comp", "delivered", "lat_p99", "active", "knots",
              "classes");
}

// Message-class names in class_delivered index order (sim/message_class.hpp).
constexpr const char* kClassNames[] = {"bulk", "burst", "interactive",
                                       "control"};

// Compact nonzero per-class delivery summary, e.g. "bulk=41 burst=9".
std::string class_summary(const JsonValue& rec) {
  const JsonValue* classes = rec.find("class_delivered");
  if (classes == nullptr || !classes->is_array()) return "";
  std::string out;
  for (std::size_t k = 0; k < classes->array.size() && k < 4; ++k) {
    const long long n = classes->array[k].as_int();
    if (n == 0) continue;
    if (!out.empty()) out += ' ';
    out += kClassNames[k];
    out += '=';
    out += std::to_string(n);
  }
  return out;
}

void print_sample_line(const JsonValue& rec) {
  std::printf("%10lld %9.4f %5s %9lld %9lld %7lld %7lld %7lld %9lld %9.1f "
              "%6lld %5lld  %s\n",
              integer(rec, "cycle"), num(rec, "score"),
              flag(rec, "warning") ? "WARN" : "", integer(rec, "max_stall_age"),
              integer(rec, "stall_hwm"), integer(rec, "blocked"),
              integer(rec, "request_arcs"), integer(rec, "largest_component"),
              integer(rec, "delivered"), num(rec, "latency_p99"),
              integer(rec, "active_routers"), integer(rec, "det_knots"),
              class_summary(rec).c_str());
}

void print_final(const JsonValue& rec) {
  std::printf("final: %lld sample(s), %lld warning(s), peak score %.4f\n",
              integer(rec, "samples"), integer(rec, "warnings"),
              num(rec, "peak_score"));
  std::printf("       first warning @ %lld, first confirmation @ %lld, "
              "lead %lld cycle(s)\n",
              integer(rec, "first_warning_cycle"),
              integer(rec, "first_confirmation_cycle"),
              integer(rec, "lead_cycles"));
  const JsonValue* latency = rec.find("latency");
  if (latency != nullptr) {
    std::printf("       latency p50 %.1f / p99 %.1f / p999 %.1f / max %lld "
                "(%lld delivered)\n",
                num(*latency, "p50"), num(*latency, "p99"),
                num(*latency, "p999"), integer(*latency, "max"),
                integer(*latency, "count"));
  }
  const JsonValue* stall = rec.find("stall_age");
  if (stall != nullptr) {
    std::printf("       stall age p50 %.1f / p99 %.1f / max %lld, "
                "hwm %lld\n",
                num(*stall, "p50"), num(*stall, "p99"), integer(*stall, "max"),
                integer(rec, "stall_hwm"));
  }
  const JsonValue* classes = rec.find("classes");
  if (classes != nullptr && classes->is_object()) {
    for (const auto& [name, cls] : classes->object) {
      if (integer(cls, "delivered") == 0) continue;
      std::printf("       class %-11s %lld delivered, latency p50 %.1f / "
                  "p99 %.1f / max %lld\n",
                  name.c_str(), integer(cls, "delivered"),
                  num(cls, "latency_p50"), num(cls, "latency_p99"),
                  integer(cls, "latency_max"));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexnet;
  std::string error;
  const auto opts = Options::parse(argc, argv, &error);
  if (!opts) {
    std::fprintf(stderr, "argument error: %s\n", error.c_str());
    return 1;
  }
  if (opts->positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: metrics_tail STREAM.ndjson [--follow] [--summary] "
                 "[--idle-limit SECONDS]\n");
    return 1;
  }
  const std::string& path = opts->positional().front();
  const bool follow = opts->get_bool("follow", false);
  const bool summary = opts->get_bool("summary", false);
  const long long idle_limit = opts->get_int("idle-limit", 30);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  std::string line;
  std::size_t lineno = 0;
  long long idle_polls = 0;
  bool saw_final = false;
  JsonValue last_sample;
  bool have_sample = false;
  for (;;) {
    if (!std::getline(in, line)) {
      if (in.bad()) {
        std::fprintf(stderr, "%s:%zu: read error\n", path.c_str(), lineno + 1);
        return 1;
      }
      if (!follow || saw_final) break;
      // Poll for growth: clear EOF, wait, retry from the same offset.
      if (idle_limit > 0 && ++idle_polls > idle_limit * 5) {
        std::fprintf(stderr, "%s: no growth for %llds, giving up\n",
                     path.c_str(), idle_limit);
        break;
      }
      in.clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      continue;
    }
    idle_polls = 0;
    ++lineno;
    JsonValue rec;
    try {
      rec = JsonValue::parse(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), lineno, e.what());
      return 1;
    }
    if (!rec.is_object()) {
      std::fprintf(stderr, "%s:%zu: record is not a JSON object\n",
                   path.c_str(), lineno);
      return 1;
    }
    if (lineno == 1) {
      const JsonValue* schema = rec.find("schema");
      if (schema == nullptr || schema->string != "flexnet-metrics-v1") {
        std::fprintf(stderr,
                     "%s:1: missing or unknown schema (want "
                     "flexnet-metrics-v1 header record)\n",
                     path.c_str());
        return 1;
      }
      if (!summary) print_header_line(rec);
      continue;
    }
    if (flag(rec, "final")) {
      saw_final = true;
      print_final(rec);
      if (!follow) continue;
      break;
    }
    if (summary) {
      last_sample = rec;
      have_sample = true;
    } else {
      print_sample_line(rec);
    }
  }
  if (lineno == 0) {
    std::fprintf(stderr, "%s:1: empty metrics stream (no header record)\n",
                 path.c_str());
    return 1;
  }
  if (summary && !saw_final && have_sample) {
    std::printf("(no final record yet) last sample:\n");
    print_header_line(JsonValue{});
    print_sample_line(last_sample);
  }
  return 0;
}
