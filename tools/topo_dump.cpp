// Topology inspector: build any topology the simulator can run (generator
// flags or a flexnet-topo-v1 file) and describe it without simulating.
//
//   topo_dump --topology dragonfly --df-routers 4 --df-globals 1
//   topo_dump --topology file:examples/topologies/irregular-16.topo
//   topo_dump --topology random --nodes 24 --degree 3 --dot random.dot
//   topo_dump --topology dragonfly --df-routers 8 --emit dragonfly-72.topo
//
// Prints node/link counts, average distance, content hash, and the
// out-degree histogram. --dot FILE writes Graphviz; --emit FILE writes the
// topology back out as flexnet-topo-v1 text (works for every family, torus
// included, so generated networks can be committed as files).
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <string>

#include "core/dot.hpp"
#include "exp/cli.hpp"
#include "topo/factory.hpp"
#include "topo/topo_file.hpp"
#include "topo/topology.hpp"
#include "util/options.hpp"

namespace {

using namespace flexnet;

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexnet;
  std::string error;
  const auto opts = Options::parse(argc, argv, &error);
  if (!opts) {
    std::fprintf(stderr, "argument error: %s\n", error.c_str());
    return 1;
  }
  if (opts->get_bool("help", false)) {
    std::printf(
        "usage: topo_dump --topology "
        "torus|mesh|fullmesh|dragonfly|random|file:<path>\n"
        "  torus/mesh:  --k --n --uni\n"
        "  dragonfly:   --df-routers --df-globals\n"
        "  random:      --nodes --degree --topo-seed\n"
        "  fullmesh:    --nodes\n"
        "  output:      --dot FILE (Graphviz)  --emit FILE (flexnet-topo-v1)\n");
    return 0;
  }

  try {
    SimConfig cfg;
    const std::string topo_arg = opts->get("topology", "torus");
    cfg.topo_kind = parse_topology(topo_arg);
    if (cfg.topo_kind == TopoKind::File) cfg.topo_file = topo_arg.substr(5);
    cfg.topology.k = static_cast<int>(opts->get_int("k", cfg.topology.k));
    cfg.topology.n = static_cast<int>(opts->get_int("n", cfg.topology.n));
    cfg.topology.bidirectional = !opts->get_bool("uni", false);
    cfg.topology.wrap = topo_arg != "mesh" && !opts->get_bool("mesh", false);
    cfg.topo_nodes = static_cast<int>(opts->get_int("nodes", cfg.topo_nodes));
    cfg.topo_degree =
        static_cast<int>(opts->get_int("degree", cfg.topo_degree));
    cfg.topo_df_routers =
        static_cast<int>(opts->get_int("df-routers", cfg.topo_df_routers));
    cfg.topo_df_globals =
        static_cast<int>(opts->get_int("df-globals", cfg.topo_df_globals));
    cfg.topo_seed = static_cast<std::uint64_t>(opts->get_int("topo-seed", 1));

    const auto topo = make_topology(cfg);

    std::printf("%s\n", topo->name().c_str());
    std::printf("  kind          %s\n",
                std::string(to_string(topo->kind())).c_str());
    std::printf("  nodes         %d\n", topo->num_nodes());
    std::printf("  channels      %zu\n", topo->channels().size());
    std::printf("  avg distance  %.4f\n", topo->average_distance());
    std::printf("  content hash  %016llx\n",
                static_cast<unsigned long long>(topo->content_hash()));

    // Out-degree histogram: degree -> node count.
    std::map<std::size_t, int> histogram;
    for (NodeId v = 0; v < topo->num_nodes(); ++v) {
      ++histogram[topo->out_channels(v).size()];
    }
    std::printf("  degree histogram (out)\n");
    for (const auto& [degree, count] : histogram) {
      std::printf("    %3zu: %d node(s)\n", degree, count);
    }

    if (opts->has("dot")) {
      write_file(opts->get("dot"), topology_to_dot(*topo));
      std::printf("DOT written to %s\n", opts->get("dot").c_str());
    }
    if (opts->has("emit")) {
      GraphTopology::Spec spec;
      spec.kind = topo->kind() == TopoKind::Torus ? TopoKind::File : topo->kind();
      spec.name = topo->name();
      spec.nodes = topo->num_nodes();
      spec.links.reserve(topo->channels().size());
      for (const ChannelDesc& ch : topo->channels()) {
        spec.links.push_back({ch.src, ch.dst, ch.width});
      }
      write_file(opts->get("emit"), write_topology_text(spec));
      std::printf("flexnet-topo-v1 written to %s\n", opts->get("emit").c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
