#include <cstdio>
#include "flexnet.hpp"
using namespace flexnet;
int main() {
  SimConfig cfg; cfg.topology.k = 8; cfg.topology.n = 2;
  cfg.routing = RoutingKind::TFAR; cfg.message_length = 8;
  cfg.link_fault_fraction = 0.2; cfg.seed = 13;
  Network net(cfg, NetworkDeps{nullptr, make_routing(cfg),
                                 make_selection(cfg.selection)});
  for (NodeId src = 0; src < net.topology().num_nodes(); src += 7)
    net.enqueue_message(src, (src + 31) % net.topology().num_nodes(), 8);
  for (int i = 0; i < 20000; ++i) net.step();
  std::printf("delivered %lld / %lld\n", (long long)net.counters().delivered, (long long)net.counters().generated);
  for (MessageId id : net.active_messages()) {
    const auto& m = net.message(id);
    std::printf("stuck m%lld src %d dst %d hops %d misroutes %d blocked %d held %zu", (long long)id, m.src, m.dst, m.hops, m.misroutes, (int)m.blocked, m.held.size());
    if (!m.held.empty()) {
      const auto& tip = net.vc(m.held.back());
      const auto& pc = net.phys(tip.channel);
      std::printf(" at node %d (kind %d)", pc.dst, (int)pc.kind);
    }
    std::printf("\n");
  }
  Cwg cwg = Cwg::from_network(net);
  auto knots = find_knots(cwg);
  std::printf("knots: %zu\n", knots.size());
  for (auto& k : knots) {
    std::printf("  knot vcs %zu dset %zu:", k.knot_vcs.size(), k.deadlock_set.size());
    for (auto id : k.deadlock_set) std::printf(" m%lld", (long long)id);
    std::printf("\n");
  }
  for (MessageId id : net.active_messages()) {
    const auto& m = net.message(id);
    std::printf("m%lld requests:", (long long)id);
    for (VcId v : m.request_set) std::printf(" vc%d(owner m%lld)", v, (long long)net.vc(v).owner);
    std::printf("\n");
  }
  return 0;
}
