#include <cstdio>
#include "flexnet.hpp"
using namespace flexnet;
int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.sim.topology.k = argc>3?std::atoi(argv[3]):8;
  cfg.sim.message_length = argc>4?std::atoi(argv[4]):16;
  cfg.sim.routing = RoutingKind::TFAR; cfg.sim.vcs = argc>1?std::atoi(argv[1]):3;
  cfg.traffic.load = argc>2?std::atof(argv[2]):0.8;
  cfg.sim.source_queue_limit = argc>5?std::atoi(argv[5]):4;
  Simulation sim(cfg);
  Network& net = sim.network();
  long long maxc=0, sum=0; int n=0, nonzero=0; int maxblk=0;
  for (int i = 0; i < 6000; ++i) {
    sim.injection().tick(net); net.step(); sim.detector().tick(net);
    if (i % 10 == 0 && i > 1000) {
      Cwg cwg = Cwg::from_network(net);
      auto cyc = enumerate_simple_cycles(cwg.graph(), 200000);
      if (cyc.count > maxc) maxc = cyc.count;
      if (cyc.count > 0) nonzero++;
      if (cwg.num_blocked_messages() > maxblk) maxblk = cwg.num_blocked_messages();
      sum += cyc.count; n++;
    }
  }
  std::printf("vcs=%s load=%s k=%d: samples=%d nonzero=%d max_cycles=%lld mean=%.1f max_blocked=%d deadlocks=%lld\n",
    argv[1], argv[2], cfg.sim.topology.k, n, nonzero, maxc, (double)sum/n, maxblk,
    (long long)sim.detector().total_deadlocks());
  return 0;
}
