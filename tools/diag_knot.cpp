#include <cstdio>
#include "flexnet.hpp"
using namespace flexnet;
int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.sim.routing = argc > 1 && std::string(argv[1]) == "TFAR" ? RoutingKind::TFAR : RoutingKind::DOR;
  cfg.sim.vcs = argc > 2 ? std::atoi(argv[2]) : 3;
  cfg.traffic.load = argc > 3 ? std::atof(argv[3]) : 0.9;
  cfg.detector.recovery = RecoveryKind::None;  // leave the knot in place
  Simulation sim(cfg);
  Network& net = sim.network();
  // run until a quiescent knot exists
  for (int c = 0; c < 40000; ++c) {
    sim.injection().tick(net);
    net.step();
    if (net.now() % 50 != 0) continue;
    Cwg cwg = Cwg::from_network(net);
    auto knots = find_knots(cwg);
    for (auto& k : knots) {
      bool q = true;
      for (auto id : k.deadlock_set) q = q && net.message_immobile(id);
      if (!q) continue;
      std::printf("cycle %lld: knot vcs=%zu dset=%zu rset=%zu dep=%zu\n",
        (long long)net.now(), k.knot_vcs.size(), k.deadlock_set.size(),
        k.resource_set.size(), k.dependent_messages.size());
      for (VcId v : k.knot_vcs) {
        const auto& vc = net.vc(v);
        const auto& pc = net.phys(vc.channel);
        std::printf("  vc %d ch %d kind %d dim %d dir %+d src %d dst %d idx %d owner %lld buf %d/%d\n",
          v, vc.channel, (int)pc.kind, pc.dim, pc.dir, pc.src, pc.dst, vc.index,
          (long long)vc.owner, vc.buffer.size(), vc.buffer.capacity());
      }
      for (MessageId id : k.deadlock_set) {
        const auto& m = net.message(id);
        std::printf("  msg %lld src %d dst %d len %d sent %d hops %d held %zu req %zu blocked_since %lld\n",
          (long long)id, m.src, m.dst, m.length, m.flits_sent, m.hops, m.held.size(),
          m.request_set.size(), (long long)m.blocked_since);
      }
      // independent verification: freeze injection, run 5000 cycles, check no flit of dset moved
      std::vector<std::pair<MessageId,int>> before;
      for (auto id : k.deadlock_set) before.push_back({id, net.message(id).flits_delivered + net.message(id).flits_sent});
      std::vector<std::vector<VcId>> heldBefore;
      for (auto id : k.deadlock_set) heldBefore.push_back(net.message(id).held);
      for (int i = 0; i < 5000; ++i) net.step();  // no injection, no recovery
      bool moved = false;
      for (size_t i = 0; i < k.deadlock_set.size(); ++i) {
        const auto& m = net.message(k.deadlock_set[i]);
        if (m.held != heldBefore[i] || m.status != MessageStatus::InFlight) { moved = true;
          std::printf("  MOVED: msg %lld status %d held %zu->%zu\n", (long long)k.deadlock_set[i], (int)m.status, heldBefore[i].size(), m.held.size()); }
      }
      std::printf("verification: %s\n", moved ? "FALSE POSITIVE (moved)" : "TRUE DEADLOCK (frozen 5000 cycles)");
      return 0;
    }
  }
  std::printf("no quiescent knot found\n");
  return 0;
}
