// telemetry_dump: inspect a telemetry run manifest written by
// --telemetry-json (write_manifest_json), or validate/summarize a
// flexnet-metrics-v1 NDJSON stream written by --metrics.
//
//   ./tools/telemetry_dump run.json               # human-readable summary
//   ./tools/telemetry_dump run.json --series      # interval series as CSV
//   ./tools/telemetry_dump run.json --hot         # hot-channel table only
//   ./tools/telemetry_dump run.json.p0 run.json.p1   # several sweep points
//   ./tools/telemetry_dump --metrics run.ndjson   # validate + summarize; a
//       truncated or garbage line fails with "<path>:<line>: ..." and exit 1
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hpp"
#include "util/options.hpp"

namespace {

using flexnet::JsonValue;

double num(const JsonValue& obj, std::string_view name) {
  const JsonValue* member = obj.find(name);
  return member != nullptr ? member->number : 0.0;
}

std::int64_t integer(const JsonValue& obj, std::string_view name) {
  return static_cast<std::int64_t>(num(obj, name));
}

std::string str(const JsonValue& obj, std::string_view name) {
  const JsonValue* member = obj.find(name);
  return member != nullptr && member->is_string() ? member->string : "?";
}

void print_summary(const JsonValue& root) {
  const JsonValue& config = root.at("config");
  const JsonValue& sim = config.at("sim");
  const JsonValue& traffic = config.at("traffic");
  const JsonValue& result = root.at("result");
  const JsonValue& window = result.at("window");
  const JsonValue* build = root.find("build");

  std::printf("schema    %s  (build %s)\n", str(root, "schema").c_str(),
              build != nullptr ? str(*build, "git_sha").c_str() : "?");
  std::printf("network   %lld-ary %lld-cube, %lld VC(s), depth %lld, %s\n",
              static_cast<long long>(integer(sim, "k")),
              static_cast<long long>(integer(sim, "n")),
              static_cast<long long>(integer(sim, "vcs")),
              static_cast<long long>(integer(sim, "buffer_depth")),
              str(sim, "routing").c_str());
  std::printf("traffic   %s @ load %.4f (seed %llu)\n",
              str(traffic, "pattern").c_str(), num(traffic, "load"),
              static_cast<unsigned long long>(integer(sim, "seed")));
  std::printf("result    norm throughput %.4f, accepted %.4f%s\n",
              num(result, "normalized_throughput"),
              num(result, "accepted_ratio"),
              result.at("saturated").boolean ? ", SATURATED" : "");
  std::printf("          deadlocks %lld, avg latency %.1f\n",
              static_cast<long long>(integer(window, "deadlocks")),
              num(window, "avg_latency"));

  const JsonValue& series = root.at("series");
  std::printf("series    %lld samples every %lld cycles (%lld dropped)\n",
              static_cast<long long>(series.at("samples").array.size()),
              static_cast<long long>(integer(series, "interval")),
              static_cast<long long>(integer(series, "dropped")));

  const JsonValue& heatmap = root.at("heatmap");
  std::printf("heatmap   %lld traversals, %lld blocked cycles, "
              "%lld injection-stall cycles\n",
              static_cast<long long>(integer(heatmap, "total_traversals")),
              static_cast<long long>(integer(heatmap, "total_blocked_cycles")),
              static_cast<long long>(
                  integer(heatmap, "total_injection_stall_cycles")));

  const JsonValue& profile = root.at("profile");
  std::printf("profile   %.3f ms total\n",
              num(profile, "total_ns") / 1e6);
}

void print_series_csv(const JsonValue& root) {
  const JsonValue& samples = root.at("series").at("samples");
  bool header = false;
  for (const JsonValue& sample : samples.array) {
    if (!header) {
      header = true;
      bool first = true;
      for (const auto& [name, value] : sample.object) {
        (void)value;
        std::printf("%s%s", first ? "" : ",", name.c_str());
        first = false;
      }
      std::printf("\n");
    }
    bool first = true;
    for (const auto& [name, value] : sample.object) {
      (void)name;
      std::printf("%s%g", first ? "" : ",", value.number);
      first = false;
    }
    std::printf("\n");
  }
}

void print_hot_channels(const JsonValue& root) {
  const JsonValue& hot = root.at("heatmap").at("hot_channels");
  std::printf("%8s %6s %6s %4s %4s %12s %12s %12s\n", "channel", "src", "dst",
              "dim", "dir", "traversals", "busy", "blocked");
  for (const JsonValue& c : hot.array) {
    std::printf("%8lld %6lld %6lld %4lld %4lld %12lld %12lld %12lld\n",
                static_cast<long long>(integer(c, "channel")),
                static_cast<long long>(integer(c, "src")),
                static_cast<long long>(integer(c, "dst")),
                static_cast<long long>(integer(c, "dim")),
                static_cast<long long>(integer(c, "dir")),
                static_cast<long long>(integer(c, "traversals")),
                static_cast<long long>(integer(c, "busy_cycles")),
                static_cast<long long>(integer(c, "blocked_cycles")));
  }
}

// Validates a flexnet-metrics-v1 NDJSON stream line by line and prints a
// summary. Any malformed line — truncated JSON, non-object, wrong schema —
// fails loudly with "<path>:<line>: <reason>" and a nonzero exit, so CI can
// gate on stream integrity.
int dump_metrics(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  auto fail = [&](std::size_t line, const std::string& reason) {
    std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), line, reason.c_str());
    return 1;
  };

  std::string line;
  std::size_t lineno = 0;
  std::int64_t samples = 0;
  std::int64_t warnings = 0;
  double peak_score = 0.0;
  double first_cycle = -1.0, last_cycle = -1.0;
  bool saw_final = false;
  JsonValue header, final_record;
  while (std::getline(in, line)) {
    ++lineno;
    JsonValue rec;
    try {
      rec = JsonValue::parse(line);
    } catch (const std::exception& e) {
      return fail(lineno, e.what());
    }
    if (!rec.is_object()) return fail(lineno, "record is not a JSON object");
    if (saw_final) return fail(lineno, "record after the final summary record");
    if (lineno == 1) {
      if (str(rec, "schema") != "flexnet-metrics-v1") {
        return fail(lineno, "missing or unknown schema (want "
                            "flexnet-metrics-v1 header record)");
      }
      header = rec;
      continue;
    }
    const JsonValue* final_flag = rec.find("final");
    if (final_flag != nullptr && final_flag->boolean) {
      final_record = rec;
      saw_final = true;
      continue;
    }
    if (rec.find("cycle") == nullptr) {
      return fail(lineno, "sample record has no \"cycle\" field");
    }
    ++samples;
    if (first_cycle < 0) first_cycle = num(rec, "cycle");
    last_cycle = num(rec, "cycle");
    peak_score = std::max(peak_score, num(rec, "score"));
    const JsonValue* warning = rec.find("warning");
    if (warning != nullptr && warning->boolean) ++warnings;
  }
  if (in.bad()) return fail(lineno, "read error");
  if (lineno == 0) return fail(1, "empty metrics stream (no header record)");

  std::printf("metrics   %s, interval %lld, warn threshold %g, stall ref %lld\n",
              str(header, "schema").c_str(),
              static_cast<long long>(integer(header, "interval")),
              num(header, "warn_threshold"),
              static_cast<long long>(integer(header, "stall_ref")));
  std::printf("shape     %lld node(s), %lld VC(s), %lld channel(s)\n",
              static_cast<long long>(integer(header, "nodes")),
              static_cast<long long>(integer(header, "vcs")),
              static_cast<long long>(integer(header, "channels")));
  std::printf("stream    %lld sample(s), cycles %lld..%lld, %lld warning "
              "record(s), peak score %.4f\n",
              static_cast<long long>(samples),
              static_cast<long long>(first_cycle),
              static_cast<long long>(last_cycle),
              static_cast<long long>(warnings), peak_score);
  if (saw_final) {
    const long long warn_at = integer(final_record, "first_warning_cycle");
    const long long confirm_at =
        integer(final_record, "first_confirmation_cycle");
    const long long lead = integer(final_record, "lead_cycles");
    std::printf("final     %lld warning(s), first warning @ %lld, first "
                "confirmation @ %lld, lead %lld cycle(s)\n",
                static_cast<long long>(integer(final_record, "warnings")),
                warn_at, confirm_at, lead);
    const JsonValue* latency = final_record.find("latency");
    if (latency != nullptr) {
      std::printf("latency   count %lld, mean %.2f, p50 %.1f, p99 %.1f, "
                  "p999 %.1f, max %lld\n",
                  static_cast<long long>(integer(*latency, "count")),
                  num(*latency, "mean"), num(*latency, "p50"),
                  num(*latency, "p99"), num(*latency, "p999"),
                  static_cast<long long>(integer(*latency, "max")));
    }
  } else {
    std::printf("final     (none — run still in progress or cut short)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexnet;
  std::string error;
  const auto opts = Options::parse(argc, argv, &error);
  if (!opts) {
    std::fprintf(stderr, "argument error: %s\n", error.c_str());
    return 1;
  }
  if (opts->has("metrics")) {
    return dump_metrics(opts->get("metrics"));
  }
  if (opts->positional().empty()) {
    std::fprintf(stderr,
                 "usage: telemetry_dump MANIFEST... [--series] [--hot]\n"
                 "       telemetry_dump --metrics STREAM.ndjson\n");
    return 1;
  }

  bool first = true;
  for (const std::string& path : opts->positional()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    JsonValue root;
    try {
      root = JsonValue::parse(buffer.str());
      if (!first) std::printf("\n");
      first = false;
      if (opts->positional().size() > 1) std::printf("== %s ==\n", path.c_str());
      if (opts->get_bool("series", false)) {
        print_series_csv(root);
      } else if (opts->get_bool("hot", false)) {
        print_hot_channels(root);
      } else {
        print_summary(root);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error reading %s: %s\n", path.c_str(), e.what());
      return 1;
    }
  }
  return 0;
}
