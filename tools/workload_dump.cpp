// workload_dump: inspect flexnet workload inputs — a flexnet-trace-v1
// recorded message stream or a flexnet-pace-v1 phase schedule — without
// running a simulation.
//
//   ./tools/workload_dump run.trace             # header, class mix, rates
//   ./tools/workload_dump run.trace --head 20   # also list the first N msgs
//   ./tools/workload_dump profile.pace          # phase table, mean/max rate
//   ./tools/workload_dump --spec 'burst(100,0.2,4)'   # built-in pace spec
//
// The file kind is sniffed from the magic line; parse errors exit 1 with the
// parser's own <path>:<line>: message.
#include <cstdio>
#include <fstream>
#include <string>

#include "sim/message_class.hpp"
#include "util/options.hpp"
#include "workload/pace.hpp"
#include "workload/trace_file.hpp"

namespace {

using namespace flexnet;

void dump_trace(const std::string& path, long long head) {
  const TraceData data = read_trace_file(path);
  const TraceHeader& h = data.header;
  std::printf("flexnet-trace-v1: %s\n", path.c_str());
  std::printf("  nodes           %d\n", h.nodes);
  std::printf("  pattern         %s (load %g)\n",
              std::string(to_string(h.traffic.pattern)).c_str(),
              h.traffic.load);
  if (h.traffic.hybrid_fraction > 0.0) {
    std::printf("  hybrid          %.0f%% %s\n",
                h.traffic.hybrid_fraction * 100.0,
                std::string(to_string(h.traffic.hybrid_with)).c_str());
  }
  std::printf("  avg distance    %g\n", h.avg_distance);
  std::printf("  capacity        %g flits/node/cycle\n", h.capacity);
  std::printf("  offered         %g flits/node/cycle\n", h.offered);
  std::printf("  records         %zu\n", data.records.size());
  std::printf("  content hash    %016llx\n",
              static_cast<unsigned long long>(data.content_hash()));

  if (!data.records.empty()) {
    const Cycle first = data.records.front().cycle;
    const Cycle last = data.records.back().cycle;
    std::int64_t flits = 0;
    std::int64_t by_class[kNumMessageClasses] = {};
    for (const TraceRecord& r : data.records) {
      flits += r.length;
      ++by_class[class_index(r.cls)];
    }
    std::printf("  cycle span      %lld..%lld\n",
                static_cast<long long>(first), static_cast<long long>(last));
    if (last > first) {
      const double cycles = static_cast<double>(last - first + 1);
      std::printf("  mean rate       %.4f msg/cycle, %.4f flits/node/cycle\n",
                  static_cast<double>(data.records.size()) / cycles,
                  static_cast<double>(flits) / cycles /
                      static_cast<double>(h.nodes));
    }
    std::printf("  class mix      ");
    for (const MessageClass cls : all_message_classes()) {
      const std::int64_t n = by_class[class_index(cls)];
      if (n == 0) continue;
      std::printf(" %s=%lld", std::string(to_string(cls)).c_str(),
                  static_cast<long long>(n));
    }
    std::printf("\n");
  }

  for (long long i = 0; i < head && i < static_cast<long long>(data.records.size());
       ++i) {
    const TraceRecord& r = data.records[static_cast<std::size_t>(i)];
    std::printf("  msg %lld %d -> %d len %d %s\n",
                static_cast<long long>(r.cycle), r.src, r.dst, r.length,
                std::string(to_string(r.cls)).c_str());
  }
}

void dump_pace(const PaceProfile& profile, const std::string& origin) {
  std::printf("flexnet-pace-v1: %s\n", origin.c_str());
  std::printf("  phases          %zu (%s)\n", profile.phases().size(),
              profile.repeat() ? "repeating" : "clamp at end");
  std::printf("  mean multiplier %.4f\n", profile.mean_multiplier());
  std::printf("  max multiplier  %.4f\n", profile.max_multiplier());
  std::printf("  content hash    %016llx\n",
              static_cast<unsigned long long>(profile.content_hash()));
  Cycle at = 0;
  for (const PacePhase& p : profile.phases()) {
    std::printf("  phase @%-8lld %lld cycle(s), rate %g -> %g, class %s\n",
                static_cast<long long>(at), static_cast<long long>(p.cycles),
                p.rate0, p.rate1, std::string(to_string(p.cls)).c_str());
    at += p.cycles;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto opts = Options::parse(argc, argv, &error);
  if (!opts) {
    std::fprintf(stderr, "argument error: %s\n", error.c_str());
    return 1;
  }
  const bool has_spec = opts->has("spec");
  if (opts->positional().size() + (has_spec ? 1 : 0) != 1) {
    std::fprintf(stderr,
                 "usage: workload_dump FILE.trace|FILE.pace [--head N]\n"
                 "       workload_dump --spec 'burst(period,duty,peak)'\n");
    return 1;
  }
  try {
    if (has_spec) {
      dump_pace(parse_pace_spec(opts->get("spec")), opts->get("spec"));
      return 0;
    }
    const std::string& path = opts->positional().front();
    std::ifstream probe(path);
    if (!probe) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::string magic;
    std::getline(probe, magic);
    probe.close();
    if (magic == kPaceMagic) {
      dump_pace(load_pace_file(path), path);
    } else {
      // Anything else goes through the trace parser, whose bad-magic error
      // names the expected format.
      dump_trace(path, opts->get_int("head", 0));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
